/**
 * @file
 * Lightweight statistics package (scalar counters, averages, histograms)
 * with a named registry, in the spirit of the gem5/SST stats packages.
 */

#ifndef NETSPARSE_SIM_STATS_HH
#define NETSPARSE_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace netsparse {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t v) { value_ += v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples; reports count / sum / mean / min / max. */
class Average
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    /**
     * Fold @p count samples known only in aggregate: their @p sum and
     * extrema. Produces bit-identical state to count individual
     * sample() calls whenever the values are integers below 2^53
     * (every tick statistic is), because each partial sum is then an
     * exactly-representable double either way.
     */
    void
    sampleBatch(std::uint64_t count, double sum, double lo, double hi)
    {
        if (count == 0)
            return;
        if (count_ == 0 || lo < min_)
            min_ = lo;
        if (count_ == 0 || hi > max_)
            max_ = hi;
        count_ += count;
        sum_ += sum;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset() { *this = Average(); }

    /** Fold another accumulation into this one (exact). */
    void
    merge(const Average &o)
    {
        if (o.count_ == 0)
            return;
        if (count_ == 0) {
            *this = o;
            return;
        }
        count_ += o.count_;
        sum_ += o.sum_;
        min_ = o.min_ < min_ ? o.min_ : min_;
        max_ = o.max_ > max_ ? o.max_ : max_;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket linear histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    /**
     * Degenerate geometries are repaired rather than trusted: zero
     * buckets would divide by zero in percentile() (and underflow the
     * bucket index in sample()), and hi <= lo would make every bucket
     * width negative - both become a single bucket of width >= 1.
     */
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi < lo + 1.0 ? lo + 1.0 : hi),
          counts_((buckets < 1 ? 1 : buckets) + 2, 0)
    {}

    void sample(double v);

    /**
     * The value at percentile @p p (0..100), by linear interpolation
     * inside the owning bucket. Samples in the underflow bin resolve
     * to lo() and samples in the overflow bin to hi() - the histogram
     * has no edge information beyond its range. An empty histogram
     * returns 0.
     */
    double percentile(double p) const;

    /** Fold another histogram in; geometries must match exactly. */
    void merge(const Histogram &o);

    /** Count in bucket @p i; bucket 0 is underflow, last is overflow. */
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t totalSamples() const { return total_; }

    double lo() const { return lo_; }
    double hi() const { return hi_; }

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * A registry of named statistics.
 *
 * Components register values under hierarchical dotted names
 * (e.g. "node3.snic.rig0.prsIssued"); dump() prints the scalars
 * sorted. Besides scalars the registry holds snapshots of Average and
 * Histogram statistics, which keep their structure (count/sum/min/max,
 * bucket counts) through the JSON export (see sim/stats_export.hh).
 * The naming contract for everything the simulator exports lives in
 * docs/observability.md.
 */
class StatRegistry
{
  public:
    /** Set (or overwrite) a named scalar. */
    void set(const std::string &name, double value);

    /** Add to a named scalar (creating it at zero). */
    void add(const std::string &name, double value);

    /** Fetch a scalar; returns 0 when absent. */
    double get(const std::string &name) const;

    /** True when the name exists (any type). */
    bool has(const std::string &name) const;

    /** Store a snapshot of an Average under @p name. */
    void setAverage(const std::string &name, const Average &avg);

    /** Store a snapshot of a Histogram under @p name. */
    void setHistogram(const std::string &name, const Histogram &hist);

    /** Print "name value" lines sorted by name (scalars only). */
    void dump(std::ostream &os) const;

    const std::map<std::string, double> &all() const { return values_; }
    const std::map<std::string, Average> &averages() const
    {
        return averages_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, double> values_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_STATS_HH
