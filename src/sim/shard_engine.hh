/**
 * @file
 * Conservative parallel execution of a sharded discrete-event
 * simulation.
 *
 * The cluster's component graph is partitioned into shards whose only
 * cross-shard edges are links with a positive latency floor. That
 * latency is the classic conservative-DES lookahead: an event executed
 * at tick t can only influence another shard at t + lookahead or
 * later. ShardEngine exploits it with epoch barriers:
 *
 *   1. drain phase: every shard merges the deliveries its peers sent
 *      last epoch into its private EventQueue;
 *   2. window phase: a barrier reduction computes the global earliest
 *      pending tick T; the epoch window is [T, T + lookahead);
 *   3. run phase: every shard executes its local events inside the
 *      window, depositing cross-shard packet deliveries into per-
 *      (source, destination) EpochMailbox channels.
 *
 * Any delivery generated inside the window lands at or after the
 * window's end, so it is always merged (step 1 of a later epoch)
 * before the destination shard can reach its tick - no shard ever
 * receives an event in its past.
 *
 * Determinism: deliveries are merged under their traffic-derived
 * delivery keys (EventQueue::deliveryKey) and every queue executes in
 * exact (tick, key) order, so the execution each component observes -
 * and therefore every statistic - is independent of the shard count
 * and of thread scheduling. The engine is exercised for byte-identical
 * stats JSON at 1/2/4 shards by tests/integration/
 * test_parallel_gather.cpp.
 *
 * Threading: one worker thread per shard, synchronized by a
 * std::barrier (futex-backed, so oversubscribed or single-core hosts
 * degrade gracefully). With tracing active each worker binds a private
 * TraceWriter capturing to "<path>.shard<i>", mirroring the sweep
 * runner's per-point files.
 */

#ifndef NETSPARSE_SIM_SHARD_ENGINE_HH
#define NETSPARSE_SIM_SHARD_ENGINE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace netsparse {

class EventQueue;

class ShardEngine
{
  public:
    /** One shard: its event queue plus the engine's merge hook. */
    struct Shard
    {
        EventQueue *eq = nullptr;
        /**
         * Merge every delivery other shards queued for this shard into
         * eq (called at each epoch barrier, on this shard's worker).
         * May be empty when the shard has no inbound channels.
         */
        std::function<void()> drainInbox;
    };

    struct Result
    {
        /** Global tick of the last executed event. */
        Tick finalTick = 0;
        /** Epoch barriers the run took (observability / tests). */
        std::uint64_t epochs = 0;
        /** Events executed across all shards. */
        std::uint64_t executedEvents = 0;
    };

    /**
     * Run every shard until all queues and channels drain or the next
     * event would pass @p limit (events at exactly @p limit still
     * execute, matching EventQueue::runUntil). @p lookahead must be
     * positive and no larger than the minimum cross-shard link
     * latency. After the run every shard's now() equals the global
     * final tick. The first shard's exception (by shard index) is
     * rethrown on the calling thread.
     */
    static Result run(std::vector<Shard> shards, Tick lookahead,
                      Tick limit);
};

} // namespace netsparse

#endif // NETSPARSE_SIM_SHARD_ENGINE_HH
