#include "sim/span.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/stats_export.hh"
#include "sim/trace.hh"

namespace netsparse {

namespace {

void
atexitWrite()
{
    SpanSink::global().writeFile();
}

/** The calling thread's bound sink; null means "use the global". */
thread_local SpanSink *tlsSink = nullptr;

/** "a should be kept over b" under the global tail-selection order. */
bool
keepBetter(const std::pair<Tick, std::uint64_t> &a,
           const std::pair<Tick, std::uint64_t> &b)
{
    if (a.first != b.first)
        return a.first > b.first; // larger total latency wins
    return a.second < b.second;   // smaller span id breaks ties
}

/** Deterministic merge order of one span's events. */
bool
eventBefore(const SpanEvent &a, const SpanEvent &b)
{
    if (a.tick != b.tick)
        return a.tick < b.tick;
    if (a.stage != b.stage)
        return a.stage < b.stage;
    if (a.comp != b.comp)
        return a.comp < b.comp;
    if (a.dur != b.dur)
        return a.dur < b.dur;
    return a.detail < b.detail;
}

/** 16-digit lowercase hex of a span id (the JSON encoding: 64-bit ids
 *  don't survive a double round-trip, strings do). */
std::string
hexId(std::uint64_t id)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(id));
    return std::string(buf);
}

} // namespace

const char *
spanStageName(SpanStage s)
{
    switch (s) {
    case SpanStage::Issue:
        return "issue";
    case SpanStage::Retransmit:
        return "retransmit";
    case SpanStage::NicEgress:
        return "nicEgress";
    case SpanStage::LinkTx:
        return "linkTx";
    case SpanStage::SwitchPipe:
        return "switchPipe";
    case SpanStage::CacheHit:
        return "cacheHit";
    case SpanStage::CacheMiss:
        return "cacheMiss";
    case SpanStage::CacheBypass:
        return "cacheBypass";
    case SpanStage::Fetch:
        return "fetch";
    case SpanStage::Retire:
        return "retire";
    }
    return "?";
}

void
SpanBuffer::retire(const SpanRetire &rec)
{
    retired_.push_back(rec);
    if (!params_.recordAll()) {
        // Sample-only mode: only sampled PRs carry a span id at all,
        // so everything retiring here is kept and nothing is pruned.
        return;
    }

    // Track the tenant's last-retiring span (the makespan finisher);
    // the span it displaces loses that protection.
    std::uint64_t displaced = 0;
    auto fin = finisher_.find(rec.tenant);
    if (fin == finisher_.end()) {
        finisher_.emplace(rec.tenant,
                          std::make_pair(rec.retireTick, rec.spanId));
    } else if (rec.retireTick > fin->second.first ||
               (rec.retireTick == fin->second.first &&
                rec.spanId < fin->second.second)) {
        displaced = fin->second.second;
        fin->second = {rec.retireTick, rec.spanId};
    }

    Tick total = rec.totalTicks();
    bool kept_outright =
        params_.sampled(rec.spanId) ||
        (params_.tailThreshold != 0 && total >= params_.tailThreshold);
    std::uint64_t evicted = 0;
    if (kept_outright) {
        keptIds_.insert(rec.spanId);
    } else if (params_.tailKeep != 0) {
        heap_.emplace_back(total, rec.spanId);
        heapIds_.insert(rec.spanId);
        std::push_heap(heap_.begin(), heap_.end(), keepBetter);
        if (heap_.size() > params_.tailKeep) {
            // keepBetter-as-less makes the heap front the WORST kept
            // span; pop it. The per-shard top-K under the same order
            // the merge uses is what keeps pruning loss-free.
            std::pop_heap(heap_.begin(), heap_.end(), keepBetter);
            evicted = heap_.back().second;
            heap_.pop_back();
            heapIds_.erase(evicted);
        }
    } else {
        evicted = rec.spanId; // threshold-only mode, under the bar
    }
    if (evicted)
        maybePrune(evicted);
    if (displaced)
        maybePrune(displaced);
}

void
SpanBuffer::maybePrune(std::uint64_t spanId)
{
    if (heapIds_.count(spanId) || keptIds_.count(spanId))
        return;
    for (const auto &f : finisher_)
        if (f.second.second == spanId)
            return;
    auto it = open_.find(spanId);
    if (it != open_.end()) {
        open_.erase(it);
        ++pruned_;
    }
}

void
buildSpanRun(SpanRun &run, const std::vector<SpanBuffer *> &bufs)
{
    const SpanParams &p = run.params;

    // 1. Gather every retire record. A span retires on exactly one
    // shard, so ids are unique; sorting by id gives an order that is
    // independent of how the execution was partitioned.
    std::vector<SpanRetire> recs;
    for (const SpanBuffer *b : bufs) {
        const auto &r = b->retired();
        recs.insert(recs.end(), r.begin(), r.end());
    }
    std::sort(recs.begin(), recs.end(),
              [](const SpanRetire &a, const SpanRetire &b) {
                  return a.spanId < b.spanId;
              });
    run.recordedSpans = recs.size();

    // 2. Selection: sampled, over-threshold, global top-K, and the
    // per-tenant finishers.
    std::unordered_map<std::uint64_t, const char *> keep;
    for (const SpanRetire &rec : recs) {
        if (p.sampled(rec.spanId))
            keep.emplace(rec.spanId, "sampled");
        else if (p.tailThreshold != 0 &&
                 rec.totalTicks() >= p.tailThreshold)
            keep.emplace(rec.spanId, "tail");
    }
    if (p.tailKeep != 0) {
        std::vector<std::pair<Tick, std::uint64_t>> rest;
        for (const SpanRetire &rec : recs)
            if (!keep.count(rec.spanId))
                rest.emplace_back(rec.totalTicks(), rec.spanId);
        std::sort(rest.begin(), rest.end(), keepBetter);
        for (std::size_t i = 0; i < rest.size() && i < p.tailKeep; ++i)
            keep.emplace(rest[i].second, "tail");
    }
    std::unordered_map<std::uint16_t, const SpanRetire *> finishers;
    for (const SpanRetire &rec : recs) {
        auto [it, fresh] = finishers.try_emplace(rec.tenant, &rec);
        if (!fresh &&
            (rec.retireTick > it->second->retireTick ||
             (rec.retireTick == it->second->retireTick &&
              rec.spanId < it->second->spanId)))
            it->second = &rec;
    }
    for (const auto &f : finishers)
        keep.try_emplace(f.second->spanId, "finisher");

    // 3. Build the kept records: merge each span's events from every
    // buffer and sort them into the canonical causal order.
    for (const SpanRetire &rec : recs) {
        auto kit = keep.find(rec.spanId);
        if (kit == keep.end())
            continue;
        SpanRecord out;
        out.info = rec;
        out.kept = kit->second;
        auto fit = finishers.find(rec.tenant);
        out.finisher =
            fit != finishers.end() && fit->second->spanId == rec.spanId;
        for (const SpanBuffer *b : bufs) {
            const std::vector<SpanEvent> *ev = b->eventsOf(rec.spanId);
            if (ev)
                out.events.insert(out.events.end(), ev->begin(),
                                  ev->end());
        }
        ns_assert(!out.events.empty(), "kept span ", hexId(rec.spanId),
                  " has no recorded events (flight recorder pruned a "
                  "selected span)");
        std::sort(out.events.begin(), out.events.end(), eventBefore);
        out.parent.resize(out.events.size());
        for (std::size_t i = 0; i < out.events.size(); ++i)
            out.parent[i] = static_cast<int>(i) - 1;
        run.spans.push_back(std::move(out));
    }

    // Largest total latency first; span id breaks ties. Deterministic:
    // ids are unique.
    std::sort(run.spans.begin(), run.spans.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return keepBetter({a.info.totalTicks(), a.info.spanId},
                                    {b.info.totalTicks(), b.info.spanId});
              });
}

void
exportSpansToTrace(TraceWriter &tw, const SpanRun &run)
{
    for (const SpanRecord &span : run.spans) {
        std::uint32_t track = tw.track(
            "spans.tenant" + std::to_string(span.info.tenant));
        std::string args =
            traceArgs({{"tenant",
                        static_cast<double>(span.info.tenant)},
                       {"reqId", static_cast<double>(span.info.reqId)},
                       {"src", static_cast<double>(span.info.src)}});
        args += ",\"fidelity\":\"" + run.fidelity + "\",\"kept\":\"" +
                span.kept + "\"";
        // The span envelope, then one nested slice per timed stage.
        tw.asyncBegin(track, "pr", span.info.spanId, span.info.issueTick,
                      std::move(args));
        for (const SpanEvent &e : span.events) {
            if (e.dur == 0)
                continue;
            const char *comp_name =
                e.comp < run.components.size()
                    ? run.components[e.comp].c_str()
                    : "?";
            tw.asyncBegin(track, spanStageName(e.stage),
                          span.info.spanId, e.tick,
                          std::string("\"comp\":\"") + comp_name + "\"");
            tw.asyncEnd(track, spanStageName(e.stage), span.info.spanId,
                        e.tick + e.dur);
        }
        tw.asyncEnd(track, "pr", span.info.spanId, span.info.retireTick);
    }
}

SpanSink &
SpanSink::instance()
{
    return tlsSink ? *tlsSink : global();
}

SpanSink &
SpanSink::global()
{
    static SpanSink sink;
    return sink;
}

SpanSink::Bind::Bind(SpanSink &s) : prev_(tlsSink)
{
    tlsSink = &s;
}

SpanSink::Bind::~Bind()
{
    tlsSink = prev_;
}

bool
SpanSink::setOutputPath(const std::string &path)
{
    if (!path.empty()) {
        std::ofstream probe(path, std::ios::app);
        if (!probe) {
            ns_warn("cannot open spans output ", path);
            return false;
        }
    }
    path_ = path;
    written_ = false;

    static bool atexit_registered = false;
    if (!atexit_registered) {
        std::atexit(atexitWrite);
        atexit_registered = true;
    }
    return true;
}

SpanRun &
SpanSink::beginRun(const std::string &label)
{
    auto run = std::make_unique<SpanRun>();
    run->label = label;
    runs_.push_back(std::move(run));
    written_ = false;
    return *runs_.back();
}

void
SpanSink::absorb(SpanSink &&other)
{
    if (other.runs_.empty())
        return;
    runs_.reserve(runs_.size() + other.runs_.size());
    for (auto &run : other.runs_)
        runs_.push_back(std::move(run));
    other.runs_.clear();
    written_ = false;
}

std::string
SpanSink::toJson() const
{
    std::ostringstream os;
    os << "{\n\"schema\": \"netsparse-spans-v1\",\n\"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        if (i)
            os << ',';
        const SpanRun &run = *runs_[i];
        os << "\n{\"run\":" << i << ",\"label\":\""
           << (run.label.empty() ? "gather" + std::to_string(i)
                                 : jsonEscape(run.label))
           << "\",\"sampleEvery\":" << run.params.sampleEvery
           << ",\"tailKeep\":" << run.params.tailKeep
           << ",\"tailThresholdTicks\":" << run.params.tailThreshold
           << ",\"seed\":\"" << hexId(run.params.seed)
           << "\",\"fidelity\":\"" << jsonEscape(run.fidelity)
           << "\",\"finalTick\":" << run.finalTick
           << ",\"recordedSpans\":" << run.recordedSpans
           << ",\n\"components\":[";
        for (std::size_t c = 0; c < run.components.size(); ++c) {
            if (c)
                os << ',';
            os << '"' << jsonEscape(run.components[c]) << '"';
        }
        os << "],\n\"spans\":[";
        for (std::size_t s = 0; s < run.spans.size(); ++s) {
            const SpanRecord &span = run.spans[s];
            if (s)
                os << ',';
            os << "\n{\"spanId\":\"" << hexId(span.info.spanId)
               << "\",\"tenant\":" << span.info.tenant
               << ",\"src\":" << span.info.src
               << ",\"srcTid\":" << span.info.srcTid
               << ",\"reqId\":" << span.info.reqId
               << ",\"issueTick\":" << span.info.issueTick
               << ",\"retireTick\":" << span.info.retireTick
               << ",\"totalTicks\":" << span.info.totalTicks()
               << ",\"servedByCache\":"
               << (span.info.servedByCache ? "true" : "false")
               << ",\"retransmits\":" << span.info.retransmits
               << ",\"kept\":\"" << span.kept << "\",\"finisher\":"
               << (span.finisher ? "true" : "false") << ",\n\"events\":[";
            for (std::size_t e = 0; e < span.events.size(); ++e) {
                const SpanEvent &ev = span.events[e];
                if (e)
                    os << ',';
                os << "\n{\"stage\":\"" << spanStageName(ev.stage)
                   << "\",\"tick\":" << ev.tick
                   << ",\"durTicks\":" << ev.dur
                   << ",\"comp\":" << ev.comp
                   << ",\"detail\":" << ev.detail
                   << ",\"parent\":" << span.parent[e] << '}';
            }
            os << "]}";
        }
        os << "\n]}";
    }
    os << "\n]\n}\n";
    return os.str();
}

void
SpanSink::writeFile()
{
    if (path_.empty() || written_)
        return;
    std::ofstream os(path_);
    if (!os) {
        ns_warn("cannot write spans output ", path_);
        return;
    }
    os << toJson();
    written_ = true;
}

void
SpanSink::reset()
{
    runs_.clear();
    path_.clear();
    collect_ = false;
    written_ = false;
}

} // namespace netsparse
