/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  - an internal simulator invariant was violated (aborts).
 * fatal()  - the user asked for something impossible (exits cleanly).
 * warn()   - something suspicious but survivable happened.
 * inform() - plain status output.
 */

#ifndef NETSPARSE_SIM_LOGGING_HH
#define NETSPARSE_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace netsparse {

namespace detail {

/** Build a message string from a stream of arguments. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Global verbosity switch: when false, inform() output is suppressed. */
void setVerbose(bool verbose);
bool verbose();

} // namespace netsparse

#define ns_panic(...)                                                       \
    ::netsparse::detail::panicImpl(__FILE__, __LINE__,                      \
                                   ::netsparse::detail::format(__VA_ARGS__))

#define ns_fatal(...)                                                       \
    ::netsparse::detail::fatalImpl(__FILE__, __LINE__,                      \
                                   ::netsparse::detail::format(__VA_ARGS__))

#define ns_warn(...)                                                        \
    ::netsparse::detail::warnImpl(::netsparse::detail::format(__VA_ARGS__))

#define ns_inform(...)                                                      \
    ::netsparse::detail::informImpl(                                        \
        ::netsparse::detail::format(__VA_ARGS__))

/** Check an invariant; panic with a message when it does not hold. */
#define ns_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ns_panic("assertion failed: ", #cond, ": ",                     \
                     ::netsparse::detail::format(__VA_ARGS__));             \
        }                                                                   \
    } while (0)

#endif // NETSPARSE_SIM_LOGGING_HH
