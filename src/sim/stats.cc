#include "sim/stats.hh"

#include <iomanip>

namespace netsparse {

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++counts_.front();
        return;
    }
    if (v >= hi_) {
        ++counts_.back();
        return;
    }
    std::size_t inner = counts_.size() - 2;
    auto idx = static_cast<std::size_t>((v - lo_) / (hi_ - lo_) * inner);
    if (idx >= inner)
        idx = inner - 1;
    ++counts_[idx + 1];
}

void
StatRegistry::set(const std::string &name, double value)
{
    values_[name] = value;
}

void
StatRegistry::add(const std::string &name, double value)
{
    values_[name] += value;
}

double
StatRegistry::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatRegistry::has(const std::string &name) const
{
    return values_.count(name) != 0 || averages_.count(name) != 0 ||
           histograms_.count(name) != 0;
}

void
StatRegistry::setAverage(const std::string &name, const Average &avg)
{
    averages_.insert_or_assign(name, avg);
}

void
StatRegistry::setHistogram(const std::string &name, const Histogram &hist)
{
    histograms_.insert_or_assign(name, hist);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, value] : values_)
        os << std::left << std::setw(48) << name << " " << value << "\n";
}

} // namespace netsparse
