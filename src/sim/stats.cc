#include "sim/stats.hh"

#include <iomanip>

namespace netsparse {

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++counts_.front();
        return;
    }
    if (v >= hi_) {
        ++counts_.back();
        return;
    }
    std::size_t inner = counts_.size() - 2;
    auto idx = static_cast<std::size_t>((v - lo_) / (hi_ - lo_) * inner);
    if (idx >= inner)
        idx = inner - 1;
    ++counts_[idx + 1];
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    // The rank of the requested sample, 1-based: p=0 targets the first
    // sample, p=100 the last. Walk the cumulative counts to the bucket
    // that holds it, then interpolate within the bucket.
    double rank = p / 100.0 * static_cast<double>(total_);
    if (rank < 1.0)
        rank = 1.0;
    std::uint64_t cum = 0;
    std::size_t inner = counts_.size() - 2;
    double width = (hi_ - lo_) / static_cast<double>(inner);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        double before = static_cast<double>(cum);
        cum += counts_[i];
        if (static_cast<double>(cum) < rank)
            continue;
        if (i == 0)
            return lo_; // underflow: all we know is "below lo".
        if (i + 1 == counts_.size())
            return hi_; // overflow: all we know is "at or above hi".
        double left = lo_ + static_cast<double>(i - 1) * width;
        double frac = (rank - before) / static_cast<double>(counts_[i]);
        return left + frac * width;
    }
    return hi_; // unreachable: total_ > 0 guarantees the walk lands.
}

void
Histogram::merge(const Histogram &o)
{
    if (o.lo_ != lo_ || o.hi_ != hi_ ||
        o.counts_.size() != counts_.size())
        return; // incompatible geometry: nothing sensible to fold.
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += o.counts_[i];
    total_ += o.total_;
}

void
StatRegistry::set(const std::string &name, double value)
{
    values_[name] = value;
}

void
StatRegistry::add(const std::string &name, double value)
{
    values_[name] += value;
}

double
StatRegistry::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatRegistry::has(const std::string &name) const
{
    return values_.count(name) != 0 || averages_.count(name) != 0 ||
           histograms_.count(name) != 0;
}

void
StatRegistry::setAverage(const std::string &name, const Average &avg)
{
    averages_.insert_or_assign(name, avg);
}

void
StatRegistry::setHistogram(const std::string &name, const Histogram &hist)
{
    histograms_.insert_or_assign(name, hist);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, value] : values_)
        os << std::left << std::setw(48) << name << " " << value << "\n";
}

} // namespace netsparse
