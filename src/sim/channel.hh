/**
 * @file
 * Single-producer/single-consumer epoch mailboxes for the sharded
 * parallel engine.
 *
 * An EpochMailbox<T> carries cross-shard messages between exactly one
 * producing shard and one consuming shard. Access alternates in phases
 * separated by the engine's epoch barriers: during a run phase only
 * the producer touches the mailbox (push), during the following drain
 * phase only the consumer does (drain). The barrier between the two
 * phases provides the happens-before edge, so the mailbox itself needs
 * no atomics - it is a plain grow-only vector whose capacity is
 * recycled across epochs.
 *
 * This is deliberately not a concurrent queue: conservative epoch
 * synchronization already guarantees the producer and consumer never
 * run in the same phase, and a plain vector keeps the per-message cost
 * at a push_back.
 */

#ifndef NETSPARSE_SIM_CHANNEL_HH
#define NETSPARSE_SIM_CHANNEL_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace netsparse {

template <typename T>
class EpochMailbox
{
  public:
    /** Producer side: append a message (run phase only). */
    template <typename... Args>
    void
    push(Args &&...args)
    {
        box_.emplace_back(std::forward<Args>(args)...);
    }

    /**
     * Consumer side: invoke @p fn on every queued message in push
     * order, then clear the mailbox keeping its capacity (drain phase
     * only).
     */
    template <typename Fn>
    void
    drain(Fn &&fn)
    {
        for (T &msg : box_)
            fn(std::move(msg));
        box_.clear();
    }

    bool empty() const { return box_.empty(); }
    std::size_t size() const { return box_.size(); }

  private:
    std::vector<T> box_;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_CHANNEL_HH
