/**
 * @file
 * Machine-readable export of the statistics registry.
 *
 * writeStatsJson() serializes one StatRegistry as a JSON object mapping
 * each stat name to a typed record:
 *
 *   scalar:    {"type":"scalar","value":V}
 *   average:   {"type":"average","count":N,"sum":S,"mean":M,
 *               "min":lo,"max":hi}
 *   histogram: {"type":"histogram","lo":L,"hi":H,"total":N,
 *               "buckets":[underflow, b0, ..., bk, overflow]}
 *
 * StatsExport is the process-wide collector behind the --stats-json
 * flag (and the NETSPARSE_STATS_JSON environment variable): every
 * ClusterSim::runGather() deposits a full registry snapshot into it,
 * and the collector writes all runs as one document
 *
 *   {"schema":"netsparse-stats-v1",
 *    "runs":[{"run":0,"label":"gather0","stats":{...}}, ...]}
 *
 * either explicitly via writeFile() or automatically at process exit.
 * The stat naming contract is documented in docs/observability.md.
 */

#ifndef NETSPARSE_SIM_STATS_EXPORT_HH
#define NETSPARSE_SIM_STATS_EXPORT_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace netsparse {

/** Escape a string for inclusion in a JSON document. */
std::string jsonEscape(const std::string &s);

/** Serialize @p reg as one JSON object (the "stats" value above). */
void writeStatsJson(const StatRegistry &reg, std::ostream &os);

/** The process-wide stats collector. */
class StatsExport
{
  public:
    static StatsExport &instance();

    StatsExport(const StatsExport &) = delete;
    StatsExport &operator=(const StatsExport &) = delete;

    /**
     * Enable collection; the document is written to @p path by
     * writeFile(), which is also registered atexit.
     */
    void setOutputPath(const std::string &path);

    /** True once an output path is configured. */
    bool enabled() const { return !path_.empty(); }

    /**
     * Open a new run section labelled @p label (auto-labelled
     * "gather<N>" when empty) and return its registry to fill.
     */
    StatRegistry &beginRun(const std::string &label = {});

    /** The whole document as a JSON string. */
    std::string toJson() const;

    /** Write the document to the configured path. */
    void writeFile();

    /** Drop collected runs and disable (tests / repeated tools). */
    void reset();

    std::size_t numRuns() const { return runs_.size(); }

  private:
    StatsExport() = default;

    struct Run
    {
        std::string label;
        StatRegistry registry;
    };

    std::string path_;
    std::vector<std::unique_ptr<Run>> runs_;
    bool written_ = false;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_STATS_EXPORT_HH
