/**
 * @file
 * Machine-readable export of the statistics registry.
 *
 * writeStatsJson() serializes one StatRegistry as a JSON object mapping
 * each stat name to a typed record:
 *
 *   scalar:    {"type":"scalar","value":V}
 *   average:   {"type":"average","count":N,"sum":S,"mean":M,
 *               "min":lo,"max":hi}
 *   histogram: {"type":"histogram","lo":L,"hi":H,"total":N,
 *               "buckets":[underflow, b0, ..., bk, overflow]}
 *
 * StatsExport is the collector behind the --stats-json flag (and the
 * NETSPARSE_STATS_JSON environment variable): every
 * ClusterSim::runGather() deposits a full registry snapshot into it,
 * and the collector writes all runs as one document
 *
 *   {"schema":"netsparse-stats-v1",
 *    "runs":[{"run":0,"label":"gather0","stats":{...}}, ...]}
 *
 * either explicitly via writeFile() or automatically at process exit.
 * The stat naming contract is documented in docs/observability.md.
 *
 * instance() resolves to the calling thread's *bound* collector - by
 * default the process-wide one, but a parallel sweep (sim/sweep.hh)
 * binds a private per-run collector on each worker thread with
 * StatsExport::Bind and absorb()s the per-point runs back into the
 * global document in sweep order, so the emitted JSON is identical to a
 * sequential run. Single-threaded tools keep the singleton facade.
 */

#ifndef NETSPARSE_SIM_STATS_EXPORT_HH
#define NETSPARSE_SIM_STATS_EXPORT_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace netsparse {

/** Escape a string for inclusion in a JSON document. */
std::string jsonEscape(const std::string &s);

/** Print a double the way JSON wants (no inf/nan, full precision). */
void writeJsonNumber(std::ostream &os, double v);

/** Serialize @p reg as one JSON object (the "stats" value above). */
void writeStatsJson(const StatRegistry &reg, std::ostream &os);

/** A stats collector (see the thread-binding notes above). */
class StatsExport
{
  public:
    /** The collector bound to the calling thread (default: global()). */
    static StatsExport &instance();

    /** The process-wide collector behind --stats-json / atexit. */
    static StatsExport &global();

    /**
     * RAII thread binding: while alive, instance() on this thread
     * resolves to the given collector (bindings nest).
     */
    class Bind
    {
      public:
        explicit Bind(StatsExport &s);
        ~Bind();
        Bind(const Bind &) = delete;
        Bind &operator=(const Bind &) = delete;

      private:
        StatsExport *prev_;
    };

    /** Per-run collectors are plain objects; see Bind. */
    StatsExport() = default;
    StatsExport(const StatsExport &) = delete;
    StatsExport &operator=(const StatsExport &) = delete;

    /**
     * Enable collection; the document is written to @p path by
     * writeFile(), which is also registered atexit. The path is
     * probe-opened immediately: returns false (and collection stays
     * off) when it cannot be created, e.g. its directory is missing.
     */
    bool setOutputPath(const std::string &path);

    /**
     * Enable (or disable) collection without an output path - used by
     * per-run sweep collectors whose runs are absorb()ed elsewhere.
     */
    void setCollect(bool on) { collect_ = on; }

    /** True when runGather() should deposit snapshots here. */
    bool enabled() const { return collect_ || !path_.empty(); }

    /**
     * Open a new run section labelled @p label and return its registry
     * to fill. An empty label is auto-assigned "gather<N>" by its final
     * document position at serialization time, so runs absorbed from
     * per-point sweep collectors number identically to sequential runs.
     */
    StatRegistry &beginRun(const std::string &label = {});

    /**
     * Move every run of @p other to the end of this document (sweep
     * merge; @p other is left empty but still enabled).
     */
    void absorb(StatsExport &&other);

    /** The whole document as a JSON string. */
    std::string toJson() const;

    /** Write the document to the configured path. */
    void writeFile();

    /** Drop collected runs and disable (tests / repeated tools). */
    void reset();

    std::size_t numRuns() const { return runs_.size(); }

  private:
    struct Run
    {
        std::string label;
        StatRegistry registry;
    };

    std::string path_;
    bool collect_ = false;
    std::vector<std::unique_ptr<Run>> runs_;
    bool written_ = false;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_STATS_EXPORT_HH
