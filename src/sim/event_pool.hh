/**
 * @file
 * Pooled, type-erased storage for event callbacks.
 *
 * The event queue used to carry a std::function per event, which heap-
 * allocates for any capture larger than the small-buffer optimization
 * (every Packet-carrying closure in the simulator). EventPool replaces
 * that with free-list-backed fixed-size slots: a closure is constructed
 * in place inside a slot, moved out and destroyed on dispatch, and the
 * slot is recycled. Slots live in chunks that never move, so closures
 * need not be trivially relocatable (a moved Packet's vectors stay
 * valid), and the steady-state schedule/dispatch path performs no
 * allocation at all once the pool has warmed up.
 *
 * Closures larger than the inline buffer (none on the simulator's hot
 * paths; sized so every scheduling site in src/net, src/snic and
 * src/runtime fits) fall back to one heap allocation per event.
 */

#ifndef NETSPARSE_SIM_EVENT_POOL_HH
#define NETSPARSE_SIM_EVENT_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace netsparse {

namespace detail {

/** What the type-erased trampoline should do with a stored closure. */
enum class EventOp
{
    Run,  // move the closure out, destroy the stored copy, invoke
    Drop, // destroy the stored copy without invoking (queue teardown)
};

using EventFn = void (*)(void *buf, EventOp op);

} // namespace detail

/** A chunked pool of fixed-size event slots addressed by index. */
class EventPool
{
  public:
    /**
     * Inline closure capacity. The largest steady-state closure is a
     * doorbell event capturing {this, unit index, RigCommand} at ~80
     * bytes; 104 leaves headroom without crossing two cache lines per
     * slot (8-byte trampoline pointer + buffer = 112-byte slot).
     */
    static constexpr std::size_t inlineBytes = 104;

    struct Slot
    {
        detail::EventFn fn = nullptr;
        alignas(std::max_align_t) unsigned char buf[inlineBytes];
    };

    EventPool() = default;
    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;

    /** Take a free slot (extends the pool by one chunk when dry). */
    std::uint32_t
    acquire()
    {
        if (freeList_.empty())
            grow();
        std::uint32_t id = freeList_.back();
        freeList_.pop_back();
        return id;
    }

    /** Return a slot whose closure has already been destroyed. */
    void release(std::uint32_t id) { freeList_.push_back(id); }

    Slot &
    slot(std::uint32_t id)
    {
        return chunks_[id / chunkSlots][id % chunkSlots];
    }

    /** Slots ever created (capacity watermark, for tests/benchmarks). */
    std::size_t capacity() const { return chunks_.size() * chunkSlots; }

  private:
    static constexpr std::size_t chunkSlots = 256;

    void
    grow()
    {
        auto base = static_cast<std::uint32_t>(capacity());
        chunks_.push_back(std::make_unique<Slot[]>(chunkSlots));
        // Hand out low indices first so early events cluster in the
        // first chunk (cache locality on small runs).
        for (std::uint32_t i = chunkSlots; i > 0; --i)
            freeList_.push_back(base + i - 1);
    }

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::vector<std::uint32_t> freeList_;
};

namespace detail {

/** Per-closure-type trampoline and constructor. */
template <typename F>
struct EventVtable
{
    static constexpr bool inline_fit =
        sizeof(F) <= EventPool::inlineBytes &&
        alignof(F) <= alignof(std::max_align_t);

    static void
    trampoline(void *buf, EventOp op)
    {
        if constexpr (inline_fit) {
            F *f = std::launder(reinterpret_cast<F *>(buf));
            if (op == EventOp::Run) {
                // Move to the stack and destroy the stored copy before
                // invoking, so the slot can be recycled even while the
                // callback is still running and a throwing callback
                // cannot leak the closure.
                F local(std::move(*f));
                f->~F();
                local();
            } else {
                f->~F();
            }
        } else {
            F *f = *std::launder(reinterpret_cast<F **>(buf));
            if (op == EventOp::Run) {
                std::unique_ptr<F> owned(f);
                (*owned)();
            } else {
                delete f;
            }
        }
    }

    template <typename G>
    static void
    construct(EventPool::Slot &s, G &&fn)
    {
        if constexpr (inline_fit)
            ::new (static_cast<void *>(s.buf)) F(std::forward<G>(fn));
        else
            ::new (static_cast<void *>(s.buf)) F *(
                new F(std::forward<G>(fn)));
        s.fn = &trampoline;
    }
};

} // namespace detail

} // namespace netsparse

#endif // NETSPARSE_SIM_EVENT_POOL_HH
