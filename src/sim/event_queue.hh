/**
 * @file
 * Deterministic discrete-event queue.
 *
 * The event queue is the heart of the simulator. Components schedule
 * callbacks at absolute ticks; the queue executes them in (tick, insertion
 * order) order, which makes every simulation run bit-reproducible for a
 * given seed.
 */

#ifndef NETSPARSE_SIM_EVENT_QUEUE_HH
#define NETSPARSE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace netsparse {

/**
 * A min-heap of timestamped callbacks with FIFO tie-breaking.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @pre when >= now(), i.e. no scheduling into the past.
     */
    void schedule(Tick when, Callback fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event, or maxTick when empty. */
    Tick nextEventTick() const;

    /**
     * Execute the single earliest event.
     * @return true if an event was executed.
     */
    bool step();

    /** Run until the queue drains. @return the final simulated time. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled exactly at @p limit still execute.
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed so far (for micro-benchmarks). */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_EVENT_QUEUE_HH
