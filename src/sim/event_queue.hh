/**
 * @file
 * Deterministic discrete-event queue.
 *
 * The event queue is the heart of the simulator. Components schedule
 * callbacks at absolute ticks; the queue executes them in (tick, insertion
 * order) order, which makes every simulation run bit-reproducible for a
 * given seed.
 *
 * Internally the queue is a two-level scheduler over a pooled event
 * store (see event_pool.hh):
 *
 *  - a timing-wheel ring of near-future buckets (bucketGranularity
 *    ticks each) absorbs the dominant short-delay events - link
 *    serialization, switch pipes, RIG chunk steps - with O(1) insertion
 *    and a tiny per-bucket heap for dispatch;
 *  - an overflow min-heap holds far-future events (watchdogs, the
 *    simulation cap) and cascades into the ring as the wheel rotates.
 *
 * Both levels order events by one deterministic (tick, key) pair. The
 * 64-bit key carries two disjoint bands:
 *
 *  - delivery events (packet arrivals, scheduleDelivery) occupy the
 *    low band: (link ordering id, per-link packet sequence). The key
 *    is derived from the traffic itself, so the same packet sorts
 *    identically no matter which queue it was inserted into or when -
 *    the property the sharded parallel engine (sim/shard_engine.hh)
 *    needs for stats that are byte-identical at any shard count;
 *  - plain schedule() events occupy the high band with an insertion
 *    sequence, preserving exact same-tick FIFO semantics among
 *    themselves.
 *
 * At equal ticks every delivery therefore runs before every internal
 * event, mirroring the common sequential case where the arrival was
 * scheduled (a link latency ago) long before the co-tick timer.
 */

#ifndef NETSPARSE_SIM_EVENT_QUEUE_HH
#define NETSPARSE_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_pool.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace netsparse {

class SpanBuffer;
class TelemetryProbe;

/**
 * A two-level scheduler of timestamped callbacks with FIFO tie-breaking.
 */
class EventQueue
{
  public:
    /** Compatibility alias; any move-constructible callable works. */
    using Callback = std::function<void()>;

    EventQueue() = default;
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** First key of the internal (plain schedule) band. */
    static constexpr std::uint64_t internalKeyBase = 1ull << 63;

    /**
     * The delivery-band ordering key for packet @p seq of the link with
     * ordering id @p linkId. Strictly below every internal key.
     */
    static std::uint64_t
    deliveryKey(std::uint32_t linkId, std::uint64_t seq)
    {
        ns_assert(linkId < (1u << 23), "link ordering id overflow");
        ns_assert(seq < (1ull << 40), "per-link sequence overflow");
        return (static_cast<std::uint64_t>(linkId) << 40) | seq;
    }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @pre when >= now(), i.e. no scheduling into the past (enforced).
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        ns_assert(when >= now_, "event scheduled in the past: when=", when,
                  " now=", now_);
        emplace(when, nextSeq_++, std::forward<F>(fn));
    }

    /**
     * Schedule a packet delivery under an explicit delivery-band
     * @p key (see deliveryKey). Same-tick deliveries execute before
     * internal events, ordered by key - an order that is a function of
     * the traffic alone, so it is identical whether the delivery was
     * scheduled locally or merged in from another shard's channel.
     */
    template <typename F>
    void
    scheduleDelivery(Tick when, std::uint64_t key, F &&fn)
    {
        ns_assert(when >= now_, "delivery scheduled in the past: when=",
                  when, " now=", now_);
        ns_assert(key < internalKeyBase, "delivery key in internal band");
        emplace(when, key, std::forward<F>(fn));
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&fn)
    {
        schedule(now_ + delay, std::forward<F>(fn));
    }

    /** True when no events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Time of the earliest pending event, or maxTick when empty. */
    Tick nextEventTick() const;

    /**
     * Execute the single earliest event.
     * @return true if an event was executed.
     */
    bool step();

    /** Run until the queue drains. @return the final simulated time. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled exactly at @p limit still execute.
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed so far (for micro-benchmarks). */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Account @p n extra executed events on behalf of a container
     * event that stands for several logical ones (a link delivery
     * train, net/link.cc). Keeps executedEvents() - and the telemetry
     * events series built from it - equal to the split execution of
     * the same work, which is what holds the count shard-invariant.
     */
    void addExecutedEvents(std::uint64_t n) { executed_ += n; }

    /** Event-pool slot watermark (for the perf benchmark). */
    std::size_t poolCapacity() const { return pool_.capacity(); }

    /**
     * Advance now() to @p t without executing anything. The parallel
     * engine uses this after the epoch loop so every shard's clock
     * agrees on the global final tick (e.g. link utilization divides
     * by now()). No pending event may precede @p t.
     */
    void fastForward(Tick t);

    /**
     * Hook @p probe into the dispatch loop: just before executing the
     * first event at or past @p firstBoundary the queue calls
     * probe->onBoundary() and continues at the tick it returns (see
     * sim/telemetry.hh). Null detaches. The disabled-path cost is one
     * never-true comparison per event.
     */
    void
    attachProbe(TelemetryProbe *probe, Tick firstBoundary)
    {
        probe_ = probe;
        probeNext_ = probe ? firstBoundary : maxTick;
    }

    /**
     * Attach this queue's span recorder (sim/span.hh). Components
     * reach it through spans(); null (the default) disables capture.
     * Like the telemetry probe the buffer is per-queue, so under the
     * sharded engine each shard records into its own buffer without
     * synchronization.
     */
    void setSpanBuffer(SpanBuffer *spans) { spans_ = spans; }

    /** The attached span recorder, or null when capture is off. */
    SpanBuffer *spans() const { return spans_; }

  private:
    /** Ticks per wheel bucket, as a shift: 4096 ps (~4 ns). */
    static constexpr unsigned bucketShift = 12;
    /**
     * Wheel size: 1024 buckets x 4 ns ~= 4.2 us of horizon, covering
     * link latency (450 ns), switch pipes (300 ns), PCIe (200 ns) and
     * every serialization delay; only watchdogs and congested-link
     * arrivals overflow to the far heap.
     */
    static constexpr std::size_t numBuckets = 1024;

    /** A scheduled event: its ordering key plus the closure's slot. */
    struct Ref
    {
        Tick when;
        std::uint64_t key;
        std::uint32_t slot;
    };

    /** Min-heap comparator over the deterministic (tick, key) pair. */
    struct Later
    {
        bool
        operator()(const Ref &a, const Ref &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.key > b.key;
        }
    };

    static std::uint64_t bucketOf(Tick t) { return t >> bucketShift; }

    /** Pool the closure and route it to the right level. */
    template <typename F>
    void
    emplace(Tick when, std::uint64_t key, F &&fn)
    {
        using D = std::decay_t<F>;
        static_assert(std::is_invocable_v<D &>,
                      "event callbacks take no arguments");
        std::uint32_t slot = pool_.acquire();
        detail::EventVtable<D>::construct(pool_.slot(slot),
                                          std::forward<F>(fn));
        enqueue(when, key, slot);
    }

    /** Route an already-pooled event to the right level. */
    void enqueue(Tick when, std::uint64_t key, std::uint32_t slot);

    /**
     * Ensure cur_ holds the globally earliest events (rotating the
     * wheel / cascading the far heap as needed).
     * @return false when the queue is empty.
     */
    bool advance();

    /** Cascade far-heap events that now fall inside the wheel window. */
    void pullFar();

    EventPool pool_;

    /**
     * Events of the bucket being drained (absolute bucket <= cursor_),
     * kept as a binary heap on (when, seq). May also receive events
     * scheduled "behind" an already-advanced cursor; bucket ranges are
     * disjoint and ordered, so cur_ always holds the global minimum.
     */
    std::vector<Ref> cur_;
    /** Near-future ring: bucket b lives at ring_[b % numBuckets]. */
    std::array<std::vector<Ref>, numBuckets> ring_;
    /** Far-future overflow heap (bucket >= cursor_ + numBuckets). */
    std::vector<Ref> far_;

    /** Absolute bucket number the wheel cursor is parked on. */
    std::uint64_t cursor_ = 0;
    /** Events currently stored in ring_ (excludes cur_ and far_). */
    std::size_t nearSize_ = 0;
    /** Total pending events across all levels. */
    std::size_t size_ = 0;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = internalKeyBase;
    std::uint64_t executed_ = 0;

    /** Attached telemetry probe (see attachProbe); usually null. */
    TelemetryProbe *probe_ = nullptr;
    /** Attached span recorder (see setSpanBuffer); usually null. */
    SpanBuffer *spans_ = nullptr;
    /** Next sample boundary; maxTick keeps the hook branch dead. */
    Tick probeNext_ = maxTick;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_EVENT_QUEUE_HH
