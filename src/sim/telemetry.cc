#include "sim/telemetry.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats_export.hh"

namespace netsparse {

namespace {

void
atexitWrite()
{
    TelemetrySink::global().writeFile();
}

/** The calling thread's bound sink; null means "use the global". */
thread_local TelemetrySink *tlsSink = nullptr;

} // namespace

TelemetryProbe::TelemetryProbe(Tick interval)
    : interval_(interval), next_(interval)
{
    ns_assert(interval_ > 0, "telemetry interval must be positive");
}

void
TelemetryProbe::addEntity(std::size_t order, std::string id,
                          std::string kind,
                          std::vector<std::string> seriesNames,
                          Sampler sampler)
{
    TelemetryEntity e;
    e.order = order;
    e.id = std::move(id);
    e.kind = std::move(kind);
    e.series.resize(seriesNames.size());
    e.seriesNames = std::move(seriesNames);
    entities_.push_back(std::move(e));
    samplers_.push_back(std::move(sampler));
}

void
TelemetryProbe::attachTo(EventQueue &eq)
{
    eq_ = &eq;
    eq.attachProbe(this, next_);
}

void
TelemetryProbe::sampleAt(Tick boundary)
{
    for (std::size_t i = 0; i < entities_.size(); ++i) {
        scratch_.clear();
        samplers_[i](boundary, scratch_);
        TelemetryEntity &e = entities_[i];
        ns_assert(scratch_.size() == e.series.size(),
                  "sampler of ", e.id, " produced ", scratch_.size(),
                  " values for ", e.series.size(), " series");
        for (std::size_t s = 0; s < scratch_.size(); ++s)
            e.series[s].push_back(scratch_[s]);
    }
    std::uint64_t executed = eq_ ? eq_->executedEvents() : 0;
    events_.push_back(static_cast<double>(executed - lastExecuted_));
    lastExecuted_ = executed;
    ++numSamples_;
}

Tick
TelemetryProbe::onBoundary(Tick eventTick)
{
    // Every boundary <= eventTick separates "executed" from "pending":
    // all events with tick < boundary have run, none at or past it
    // have. Sample them all with the current state.
    while (next_ <= eventTick) {
        sampleAt(next_);
        next_ += interval_;
    }
    return next_;
}

void
TelemetryProbe::flushUntil(Tick finalTick)
{
    while (next_ <= finalTick) {
        sampleAt(next_);
        next_ += interval_;
    }
}

TelemetrySink &
TelemetrySink::instance()
{
    return tlsSink ? *tlsSink : global();
}

TelemetrySink &
TelemetrySink::global()
{
    static TelemetrySink sink;
    return sink;
}

TelemetrySink::Bind::Bind(TelemetrySink &s) : prev_(tlsSink)
{
    tlsSink = &s;
}

TelemetrySink::Bind::~Bind()
{
    tlsSink = prev_;
}

bool
TelemetrySink::setOutputPath(const std::string &path)
{
    // Probe-open now so a missing directory fails loudly up front
    // instead of producing a silent empty run at process exit.
    if (!path.empty()) {
        std::ofstream probe(path, std::ios::app);
        if (!probe) {
            ns_warn("cannot open telemetry output ", path);
            return false;
        }
    }
    path_ = path;
    written_ = false;

    static bool atexit_registered = false;
    if (!atexit_registered) {
        std::atexit(atexitWrite);
        atexit_registered = true;
    }
    return true;
}

TelemetrySink::Run &
TelemetrySink::beginRun(const std::string &label)
{
    auto run = std::make_unique<Run>();
    run->label = label;
    runs_.push_back(std::move(run));
    written_ = false;
    return *runs_.back();
}

void
TelemetrySink::absorb(TelemetrySink &&other)
{
    if (other.runs_.empty())
        return;
    runs_.reserve(runs_.size() + other.runs_.size());
    for (auto &run : other.runs_)
        runs_.push_back(std::move(run));
    other.runs_.clear();
    written_ = false;
}

std::string
TelemetrySink::toJson() const
{
    std::ostringstream os;
    os << "{\n\"schema\": \"netsparse-telemetry-v1\",\n\"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        if (i)
            os << ',';
        const Run &run = *runs_[i];
        os << "\n{\"run\":" << i << ",\"label\":\""
           << (run.label.empty() ? "gather" + std::to_string(i)
                                 : jsonEscape(run.label))
           << "\",\"intervalTicks\":" << run.intervalTicks
           << ",\"finalTick\":" << run.finalTick
           << ",\n\"sampleTicks\":[";
        for (std::size_t k = 0; k < run.sampleTicks.size(); ++k) {
            if (k)
                os << ',';
            os << run.sampleTicks[k];
        }
        os << "],\n\"entities\":[";
        for (std::size_t e = 0; e < run.entities.size(); ++e) {
            const TelemetryEntity &ent = run.entities[e];
            if (e)
                os << ',';
            os << "\n{\"id\":\"" << jsonEscape(ent.id)
               << "\",\"kind\":\"" << jsonEscape(ent.kind)
               << "\",\"series\":{";
            for (std::size_t s = 0; s < ent.seriesNames.size(); ++s) {
                if (s)
                    os << ',';
                os << '"' << jsonEscape(ent.seriesNames[s]) << "\":[";
                const std::vector<double> &vals = ent.series[s];
                for (std::size_t k = 0; k < vals.size(); ++k) {
                    if (k)
                        os << ',';
                    writeJsonNumber(os, vals[k]);
                }
                os << ']';
            }
            os << "}}";
        }
        os << "\n]}";
    }
    os << "\n]\n}\n";
    return os.str();
}

void
TelemetrySink::writeFile()
{
    if (path_.empty() || written_)
        return;
    std::ofstream os(path_);
    if (!os) {
        ns_warn("cannot write telemetry output ", path_);
        return;
    }
    os << toJson();
    written_ = true;
}

void
TelemetrySink::reset()
{
    runs_.clear();
    path_.clear();
    collect_ = false;
    written_ = false;
}

} // namespace netsparse
