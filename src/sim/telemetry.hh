/**
 * @file
 * Interval telemetry: simulated-time sampling of component state.
 *
 * A TelemetryProbe rides inside one EventQueue's dispatch loop and
 * samples a set of registered entities (links, switches, RIG units -
 * the probe itself is component-agnostic; the cluster registers
 * sampler closures) at every multiple of a configured simulated-time
 * interval. Sampling is lazy: the queue consults the probe just
 * before executing the first event at or past the next boundary B, so
 * a sample at B observes the state produced by exactly the events
 * with tick < B - a definition that is independent of the shard
 * count, because every component is wholly owned by one shard and
 * per-shard execution is tick-ordered. The cost when no probe is
 * attached is a single always-false integer comparison per event.
 *
 * TelemetrySink is the collector behind --telemetry-out: after a run
 * the cluster merges every shard's probe into one document,
 *
 *   {"schema":"netsparse-telemetry-v1",
 *    "runs":[{"run":0,"label":"gather0","intervalTicks":T,
 *             "finalTick":F,"sampleTicks":[...],
 *             "entities":[{"id":"tor0","kind":"switch",
 *                          "series":{"outQueueBytes":[...], ...}},
 *                         ...]}]}
 *
 * with entities ordered by their cluster-wide registration index and
 * all series aligned to sampleTicks. Like the stats document it is
 * byte-identical at any shard count (per-shard event counts are the
 * one inherently shard-dependent quantity, so the document carries
 * their cluster-wide sum as the single "sim" entity). The schema is
 * documented in docs/observability.md; sink threading mirrors
 * StatsExport (thread-bound instance() with a process-global
 * fallback, RAII Bind for sweep workers).
 */

#ifndef NETSPARSE_SIM_TELEMETRY_HH
#define NETSPARSE_SIM_TELEMETRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace netsparse {

class EventQueue;

/** One sampled entity: aligned value series under a stable identity. */
struct TelemetryEntity
{
    /** Cluster-wide registration index; the document sort key. */
    std::size_t order = 0;
    std::string id;
    std::string kind;
    std::vector<std::string> seriesNames;
    /** series[i][k]: seriesNames[i] at the k-th sample boundary. */
    std::vector<std::vector<double>> series;
};

/** Samples its entities at every interval boundary of one queue. */
class TelemetryProbe
{
  public:
    /**
     * A sampler appends one value per declared series name for the
     * boundary tick it is given. Stateful samplers (interval deltas)
     * keep their cursor in the closure.
     */
    using Sampler =
        std::function<void(Tick boundary, std::vector<double> &out)>;

    explicit TelemetryProbe(Tick interval);

    /** Register an entity; see TelemetryEntity for the fields. */
    void addEntity(std::size_t order, std::string id, std::string kind,
                   std::vector<std::string> seriesNames, Sampler sampler);

    /**
     * Hook this probe into @p eq's dispatch loop (at most one probe
     * per queue) and source the "events per interval" counter from it.
     */
    void attachTo(EventQueue &eq);

    /**
     * EventQueue calls this just before executing an event at
     * @p eventTick >= the next boundary: samples every boundary
     * <= @p eventTick and returns the new next boundary.
     */
    Tick onBoundary(Tick eventTick);

    /** Sample any remaining boundaries <= @p finalTick (end of run). */
    void flushUntil(Tick finalTick);

    Tick interval() const { return interval_; }
    std::size_t numSamples() const { return numSamples_; }

    /** Events executed on the attached queue, per interval. */
    const std::vector<double> &eventsPerInterval() const
    {
        return events_;
    }

    /** The sampled entities (series filled up to numSamples()). */
    std::vector<TelemetryEntity> takeEntities()
    {
        return std::move(entities_);
    }

  private:
    void sampleAt(Tick boundary);

    Tick interval_;
    Tick next_;
    EventQueue *eq_ = nullptr;
    std::uint64_t lastExecuted_ = 0;
    std::size_t numSamples_ = 0;
    std::vector<TelemetryEntity> entities_;
    std::vector<Sampler> samplers_;
    std::vector<double> events_;
    std::vector<double> scratch_;
};

/** The collector behind --telemetry-out (see the file comment). */
class TelemetrySink
{
  public:
    /** The sink bound to the calling thread (default: global()). */
    static TelemetrySink &instance();

    /** The process-wide sink behind --telemetry-out / atexit. */
    static TelemetrySink &global();

    /** RAII thread binding, mirroring StatsExport::Bind. */
    class Bind
    {
      public:
        explicit Bind(TelemetrySink &s);
        ~Bind();
        Bind(const Bind &) = delete;
        Bind &operator=(const Bind &) = delete;

      private:
        TelemetrySink *prev_;
    };

    TelemetrySink() = default;
    TelemetrySink(const TelemetrySink &) = delete;
    TelemetrySink &operator=(const TelemetrySink &) = delete;

    /**
     * Enable collection and write the document to @p path at
     * writeFile() / process exit. The path is probe-opened
     * immediately: returns false (collection stays off) when it
     * cannot be created, e.g. its directory does not exist.
     */
    bool setOutputPath(const std::string &path);

    /** Enable (or disable) collection without an output path. */
    void setCollect(bool on) { collect_ = on; }

    /** True when runGather() should sample telemetry. */
    bool enabled() const { return collect_ || !path_.empty(); }

    /** One run's merged timeline. */
    struct Run
    {
        std::string label;
        Tick intervalTicks = 0;
        Tick finalTick = 0;
        std::vector<Tick> sampleTicks;
        std::vector<TelemetryEntity> entities;
    };

    /**
     * Open a new run section; empty labels serialize as "gather<N>"
     * by final document position (absorb-stable, like StatsExport).
     */
    Run &beginRun(const std::string &label = {});

    /** Move every run of @p other to the end of this document. */
    void absorb(TelemetrySink &&other);

    /** The whole document as a JSON string. */
    std::string toJson() const;

    /** Write the document to the configured path. */
    void writeFile();

    /** Drop collected runs and disable (tests / repeated tools). */
    void reset();

    std::size_t numRuns() const { return runs_.size(); }

  private:
    std::string path_;
    bool collect_ = false;
    std::vector<std::unique_ptr<Run>> runs_;
    bool written_ = false;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_TELEMETRY_HH
