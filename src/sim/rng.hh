/**
 * @file
 * Deterministic random-number utilities.
 *
 * All stochastic pieces of the repository (matrix generators, fault
 * injection) draw from a seeded Rng so that runs are reproducible.
 */

#ifndef NETSPARSE_SIM_RNG_HH
#define NETSPARSE_SIM_RNG_HH

#include <cmath>
#include <cstdint>
#include <random>

namespace netsparse {

/**
 * splitmix64: a tiny, high-quality 64-bit mixing function.
 *
 * Used both for seeding and as the deterministic "property checksum"
 * carried by PR payloads for end-to-end data-path verification.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Seedable wrapper around std::mt19937_64 with convenience draws. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : eng_(splitmix64(seed)) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        std::uniform_int_distribution<std::uint64_t> d(lo, hi);
        return d(eng_);
    }

    /** Uniform real in [0, 1). */
    double
    uniform()
    {
        std::uniform_real_distribution<double> d(0.0, 1.0);
        return d(eng_);
    }

    /** Geometric-ish positive integer with mean approximately @p mean. */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        std::geometric_distribution<std::uint64_t> d(1.0 / mean);
        return d(eng_) + 1;
    }

    /**
     * Bounded Zipf-like draw in [0, n): index i is picked with probability
     * proportional to 1 / (i + 1)^alpha. Implemented by inverse-CDF over
     * a precomputed-free approximation (rejection on the continuous
     * bounded Pareto), which is accurate enough for workload synthesis.
     */
    std::uint64_t
    zipf(std::uint64_t n, double alpha)
    {
        if (n <= 1)
            return 0;
        // Inverse transform on the continuous bounded power law.
        double u = uniform();
        double nmax = static_cast<double>(n);
        double x;
        if (alpha == 1.0) {
            x = std::exp(u * std::log(nmax));
        } else {
            double a1 = 1.0 - alpha;
            x = std::pow(u * (std::pow(nmax, a1) - 1.0) + 1.0, 1.0 / a1);
        }
        auto idx = static_cast<std::uint64_t>(x - 1.0);
        return idx >= n ? n - 1 : idx;
    }

    std::mt19937_64 &engine() { return eng_; }

  private:
    std::mt19937_64 eng_;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_RNG_HH
