/**
 * @file
 * A miniature RDMA-Verbs-style host API with the paper's IBV_WR_RIG
 * extension (Section 5.4).
 *
 * The paper exposes RIG offload as a new opcode in ibv_send_wr rather
 * than a separate library; this header mirrors that shape: the
 * application builds a work request, posts it to a queue pair bound to
 * the local SNIC, and polls a completion queue.
 */

#ifndef NETSPARSE_HOST_VERBS_HH
#define NETSPARSE_HOST_VERBS_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_queue.hh"
#include "snic/snic.hh"

namespace netsparse {

/** Work-request opcodes. Only the RIG extension is modeled in full. */
enum class IbvWrOpcode : std::uint32_t
{
    RdmaRead, ///< classic fine-grained one-sided read
    Rig,      ///< the NetSparse Remote Indexed Gather extension
};

/** RIG-specific fields of a work request (Section 5.1). */
struct IbvRigAttr
{
    /** Host address of the idx list (one idx per nonzero). */
    const std::uint32_t *idxList = nullptr;
    /** Number of idxs in the batch. */
    std::uint64_t numIdxs = 0;
    /** Property size in bytes. */
    std::uint32_t propBytes = 0;
};

/** A send work request. */
struct IbvSendWr
{
    std::uint64_t wrId = 0;
    IbvWrOpcode opcode = IbvWrOpcode::Rig;
    IbvRigAttr rig;
};

/** A work completion. */
struct IbvWc
{
    enum class Status : std::uint32_t
    {
        Success,
        WatchdogTimeout,
    };

    std::uint64_t wrId = 0;
    Status status = Status::Success;
};

/**
 * A queue pair bound to one SNIC. postSend() programs a free client RIG
 * unit; completions appear on the CQ when the gather finishes.
 */
class RigQueuePair
{
  public:
    RigQueuePair(EventQueue &eq, Snic &snic);

    /**
     * Post @p wr. RdmaRead is modeled as a degenerate 1-idx RIG (the
     * paper notes a batch of 1 is equivalent to a vanilla read).
     * @return false when every client RIG unit is occupied.
     */
    bool postSend(const IbvSendWr &wr);

    /** Pop one completion. @return false when the CQ is empty. */
    bool pollCq(IbvWc &wc);

    /** Completions waiting on the CQ. */
    std::size_t cqDepth() const { return cq_.size(); }

    /** Work requests posted but not yet completed. */
    std::size_t outstanding() const { return outstanding_; }

    /**
     * Install a completion notifier (the "CQ event channel"): invoked
     * each time a completion lands on the CQ.
     */
    void
    setCompletionHandler(std::function<void()> fn)
    {
        onCompletion_ = std::move(fn);
    }

  private:
    std::function<void()> onCompletion_;
    EventQueue &eq_;
    Snic &snic_;
    std::vector<bool> unitReserved_;
    std::deque<IbvWc> cq_;
    std::size_t outstanding_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_HOST_VERBS_HH
