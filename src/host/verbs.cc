#include "host/verbs.hh"

#include "sim/logging.hh"

namespace netsparse {

RigQueuePair::RigQueuePair(EventQueue &eq, Snic &snic)
    : eq_(eq), snic_(snic), unitReserved_(snic.numClientUnits(), false)
{}

bool
RigQueuePair::postSend(const IbvSendWr &wr)
{
    // Find a client RIG unit that is neither running nor reserved by a
    // doorbell still in flight.
    std::uint32_t unit = snic_.numClientUnits();
    for (std::uint32_t c = 0; c < snic_.numClientUnits(); ++c) {
        if (!unitReserved_[c] && !snic_.clientBusy(c)) {
            unit = c;
            break;
        }
    }
    if (unit == snic_.numClientUnits())
        return false;

    RigCommand cmd;
    if (wr.opcode == IbvWrOpcode::Rig) {
        cmd.idxs = wr.rig.idxList;
        cmd.count = wr.rig.numIdxs;
    } else {
        ns_assert(wr.rig.numIdxs == 1,
                  "RdmaRead carries exactly one idx");
        cmd.idxs = wr.rig.idxList;
        cmd.count = 1;
    }
    cmd.propBytes = wr.rig.propBytes;
    cmd.commandId = wr.wrId;
    std::uint64_t wr_id = wr.wrId;
    cmd.onComplete = [this, wr_id, unit](bool success) {
        unitReserved_[unit] = false;
        --outstanding_;
        cq_.push_back({wr_id, success ? IbvWc::Status::Success
                                      : IbvWc::Status::WatchdogTimeout});
        if (onCompletion_)
            onCompletion_();
    };

    unitReserved_[unit] = true;
    ++outstanding_;
    snic_.postRig(unit, std::move(cmd));
    return true;
}

bool
RigQueuePair::pollCq(IbvWc &wc)
{
    if (cq_.empty())
        return false;
    wc = cq_.front();
    cq_.pop_front();
    return true;
}

} // namespace netsparse
