#include "host/host_node.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace netsparse {

HostNode::HostNode(EventQueue &eq, HostConfig cfg, Snic &snic,
                   std::vector<std::uint32_t> idx_stream,
                   std::uint32_t prop_bytes)
    : eq_(eq), cfg_(cfg), snic_(snic), stream_(std::move(idx_stream)),
      propBytes_(prop_bytes), qp_(eq, snic)
{
    ns_assert(&eq_ == &snic_.eventQueue(),
              "host and its SNIC must share an event queue; the shard "
              "partition is rack-granular exactly so this pair stays "
              "together");
    qp_.setCompletionHandler([this] { drainCq(); });
    if (cfg_.batchSize == 0) {
        std::uint64_t per_unit =
            stream_.size() / (2ull * std::max(1u, snic_.numClientUnits()));
        cfg_.batchSize = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
            per_unit, cfg_.autoBatchMin, cfg_.autoBatchMax));
    }
}

void
HostNode::start(std::function<void()> on_done)
{
    onDone_ = std::move(on_done);
    if (stream_.empty()) {
        done_ = true;
        finishTick_ = eq_.now();
        if (onDone_)
            onDone_();
        return;
    }
    pump();
}

void
HostNode::pump()
{
    // The single control core issues at most one command per overhead
    // window; model it as a self-rescheduling issue loop.
    if (issueScheduled_ || done_)
        return;
    if (nextOffset_ >= stream_.size() && retryQueue_.empty())
        return;

    issueScheduled_ = true;
    Tick start = std::max(eq_.now(), coreFreeAt_);
    coreFreeAt_ = start + cfg_.commandIssueOverhead;
    eq_.schedule(coreFreeAt_, [this] {
        issueScheduled_ = false;

        // Failed batches are re-posted before fresh work: their idxs
        // gate the kernel's completion just the same, and draining them
        // first bounds how long a retried batch can starve.
        InflightBatch batch;
        bool fromRetry = !retryQueue_.empty();
        if (fromRetry) {
            batch = retryQueue_.front();
        } else if (nextOffset_ < stream_.size()) {
            batch.offset = nextOffset_;
            batch.count = std::min<std::size_t>(
                cfg_.batchSize, stream_.size() - nextOffset_);
        } else {
            return;
        }

        IbvSendWr wr;
        wr.wrId = nextWrId_++;
        wr.opcode = IbvWrOpcode::Rig;
        wr.rig.idxList = stream_.data() + batch.offset;
        wr.rig.numIdxs = batch.count;
        wr.rig.propBytes = propBytes_;

        if (qp_.postSend(wr)) {
            ++commandsIssued_;
            if (fromRetry)
                retryQueue_.pop_front();
            else
                nextOffset_ += batch.count;
            inflightBatches_.push_back({wr.wrId, batch});
            pump(); // keep additional free units fed
        }
        // When no unit was free, a completion will re-invoke pump().
        drainCq();
    });
}

void
HostNode::drainCq()
{
    IbvWc wc;
    bool completed = false;
    while (qp_.pollCq(wc)) {
        completed = true;
        auto it = std::find_if(
            inflightBatches_.begin(), inflightBatches_.end(),
            [&](const InflightEntry &e) { return e.wrId == wc.wrId; });
        if (wc.status != IbvWc::Status::Success) {
            ++failures_;
            if (it != inflightBatches_.end()) {
                InflightBatch batch = it->batch;
                if (batch.attempts < cfg_.commandRetries) {
                    // Retry-after-watchdog: re-post the whole batch.
                    // The SNIC discarded its partial results; filter
                    // and cache state make the redo cheaper.
                    ++batch.attempts;
                    ++commandRetries_;
                    retryQueue_.push_back(batch);
                } else {
                    ++permanentFailures_;
                }
            }
        }
        if (it != inflightBatches_.end())
            inflightBatches_.erase(it);
    }
    if (completed && cfg_.policy == BatchPolicy::Adaptive &&
        nextOffset_ < stream_.size()) {
        // AIMD (see HostConfig::policy): idle units mean the split is
        // too coarse; a saturated SNIC can afford coarser commands.
        std::size_t units = snic_.numClientUnits();
        std::size_t idle = units - qp_.outstanding();
        if (idle > units / 2) {
            cfg_.batchSize =
                std::max(cfg_.autoBatchMin, cfg_.batchSize / 2);
        } else {
            cfg_.batchSize = std::min(cfg_.autoBatchMax,
                                      cfg_.batchSize +
                                          cfg_.batchSize / 4);
        }
    }
    if (nextOffset_ >= stream_.size() && retryQueue_.empty() &&
        qp_.outstanding() == 0) {
        if (!done_) {
            done_ = true;
            finishTick_ = eq_.now();
            if (onDone_)
                onDone_();
        }
        return;
    }
    pump();
}

} // namespace netsparse
