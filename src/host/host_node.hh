/**
 * @file
 * The host-side driver of one node's communication phase.
 *
 * A single CPU core (Section 8.1: NetSparse dedicates one core per node
 * to control the SNIC) walks the node's nonzero idx stream, slices it
 * into RIG batches, and keeps every free client RIG unit fed. Command
 * issue costs the core a fixed overhead, serializing issues, which is
 * what makes very small batch sizes expensive (Figure 15).
 */

#ifndef NETSPARSE_HOST_HOST_NODE_HH
#define NETSPARSE_HOST_HOST_NODE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "host/verbs.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "snic/snic.hh"

namespace netsparse {

/** How the host chooses RIG batch sizes. */
enum class BatchPolicy : std::uint8_t
{
    /** Fixed batchSize (0 = one-shot automatic sizing). */
    Static,
    /**
     * The Section 9.4 future-work extension: adapt the batch size at
     * runtime with an AIMD rule - when completions find many client
     * units idle the batches are too coarse (intra-node imbalance), so
     * halve them; when all units stay busy, grow batches additively to
     * amortize the per-command issue overhead.
     */
    Adaptive,
};

/** Host driver parameters. */
struct HostConfig
{
    /**
     * Nonzeros per RIG command (paper default 32k / 8k per matrix).
     * 0 selects automatic sizing: the stream is split so every client
     * RIG unit gets work (about two batches each), clamped to
     * [autoBatchMin, autoBatchMax]. This keeps scaled-down matrices
     * from collapsing onto a single unit.
     */
    std::uint32_t batchSize = 0;
    std::uint32_t autoBatchMin = 512;
    std::uint32_t autoBatchMax = 32768;
    /** Batch-size selection policy. */
    BatchPolicy policy = BatchPolicy::Static;
    /** Core time to assemble and post one work request. */
    Tick commandIssueOverhead = 250 * ticks::ns;
    /**
     * Re-posts of a RIG command after a watchdog/retry-budget failure
     * before the host gives up on that batch. The zero-fault path never
     * fails a command, so this costs nothing when the fabric is
     * lossless.
     */
    std::uint32_t commandRetries = 3;
};

/** Drives one node's gather through the verbs layer. */
class HostNode
{
  public:
    /**
     * @param idx_stream the cids of the node's nonzeros in row-scan
     *        order. The vector must outlive the run.
     */
    HostNode(EventQueue &eq, HostConfig cfg, Snic &snic,
             std::vector<std::uint32_t> idx_stream,
             std::uint32_t prop_bytes);

    /** Kick off the gather; @p on_done fires when all batches finish. */
    void start(std::function<void()> on_done);

    /** Simulated time when the last batch completed. */
    Tick finishTick() const { return finishTick_; }

    /** True once every batch completed (successfully or not). */
    bool done() const { return done_; }

    /** Command completions that reported failure (pre-retry). */
    std::uint64_t failures() const { return failures_; }

    /** Failed commands the host re-posted. */
    std::uint64_t commandRetries() const { return commandRetries_; }

    /** Batches abandoned after exhausting commandRetries. */
    std::uint64_t permanentFailures() const { return permanentFailures_; }

    std::uint64_t commandsIssued() const { return commandsIssued_; }
    const std::vector<std::uint32_t> &idxStream() const { return stream_; }

    /** The batch size currently in use (changes under Adaptive). */
    std::uint32_t currentBatchSize() const { return cfg_.batchSize; }

  private:
    /** One posted batch, remembered until its completion arrives so a
     *  watchdog-failed command can be re-posted (retry-after-failure). */
    struct InflightBatch
    {
        std::size_t offset = 0;
        std::size_t count = 0;
        std::uint32_t attempts = 0;
    };

    /** A posted batch keyed by its work-request id. */
    struct InflightEntry
    {
        std::uint64_t wrId = 0;
        InflightBatch batch;
    };

    void pump();
    void drainCq();

    EventQueue &eq_;
    HostConfig cfg_;
    Snic &snic_;
    std::vector<std::uint32_t> stream_;
    std::uint32_t propBytes_;
    RigQueuePair qp_;

    std::function<void()> onDone_;
    std::size_t nextOffset_ = 0;
    Tick coreFreeAt_ = 0;
    bool issueScheduled_ = false;
    bool done_ = false;
    Tick finishTick_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t commandsIssued_ = 0;
    std::uint64_t nextWrId_ = 1;

    /**
     * Posted batches, wrId-sorted (ids are issued monotonically, so
     * push_back keeps the order). Outstanding depth is bounded by the
     * SNIC's client-unit count, so a flat vector replaces the former
     * std::map: no per-batch heap node, and at 1024 nodes the host-side
     * bookkeeping stays a few cache lines per node.
     */
    std::vector<InflightEntry> inflightBatches_;
    /** Failed batches waiting to be re-posted, oldest first. */
    std::deque<InflightBatch> retryQueue_;
    std::uint64_t commandRetries_ = 0;
    std::uint64_t permanentFailures_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_HOST_HOST_NODE_HH
