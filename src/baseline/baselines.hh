/**
 * @file
 * Software-only communication baselines (Section 8.1).
 *
 * SUOpt: the ideal sparsity-unaware limit. Every node receives every
 * non-local property at 100% line rate with zero header or software
 * overhead and perfect overlap. Communication time is simply the tail
 * node's byte volume divided by the line rate.
 *
 * SAOpt: an idealized sparsity-aware implementation built on the
 * Conveyors framework. Each of the node's cores runs a Conveyors rank
 * over a contiguous block of the node's rows; redundant PRs are
 * pre-filtered perfectly *within each rank* (cross-rank filtering is
 * impossible because ranks are independent endpoints, which is why
 * NetSparse still wins on PR count - Table 7, last column). Ranks
 * aggregate PRs per destination into MTU-sized messages, so header
 * overhead is amortized as in NetSparse's NIC-level concatenation.
 * Communication time per node is the maximum of:
 *   - software time: PRs handled * per-PR overhead / cores, and
 *   - wire time: bytes (with headers) / line rate,
 * with zero network latency - every assumption favoring the baseline.
 *
 * The per-PR software overhead is the calibration constant the paper
 * measures on a Delta node (Figure 10); saOptIdealGoodput() reproduces
 * that experiment's shape.
 */

#ifndef NETSPARSE_BASELINE_BASELINES_HH
#define NETSPARSE_BASELINE_BASELINES_HH

#include <cstdint>
#include <vector>

#include "net/protocol.hh"
#include "sim/types.hh"
#include "sparse/csr.hh"
#include "sparse/partition.hh"

namespace netsparse {

/** Shared parameters of the software baselines. */
struct BaselineParams
{
    Bandwidth lineRate = Bandwidth::fromGbps(400.0);
    ProtocolParams proto;
    /** Cores per node available for communication (Section 8.1: 64). */
    std::uint32_t coresPerNode = 64;
    /** Conveyors ranks per node (one per core). */
    std::uint32_t ranksPerNode = 64;
    /**
     * Calibrated per-PR software cost (generation, book-keeping,
     * synchronization, buffering) for the Conveyors-based SAOpt.
     */
    Tick softwareOverheadPerPr = 1310 * ticks::ns;
    /** Conveyors aggregation buffer (message) size. */
    std::uint32_t messageBytes = 1500;
};

/** Result of an analytic baseline evaluation. */
struct BaselineResult
{
    /** Cluster communication time (tail node). */
    Tick commTicks = 0;
    NodeId tailNode = 0;
    /** Per-node communication time. */
    std::vector<Tick> perNodeTicks;
    /** Per-node received wire bytes. */
    std::vector<std::uint64_t> perNodeRxBytes;
    /** Per-node PRs handled (0 for SUOpt). */
    std::vector<std::uint64_t> perNodePrs;
    /** Total wire traffic, headers included. */
    std::uint64_t totalWireBytes = 0;
    /** Total useful payload moved. */
    std::uint64_t totalPayloadBytes = 0;

    /** Tail-node goodput as a fraction of the line rate. */
    double tailGoodput = 0.0;
    /** Tail-node line utilization. */
    double tailLineUtil = 0.0;
};

/** Evaluate the SUOpt limit for property width @p k (elements). */
BaselineResult runSuOpt(const Csr &m, const Partition1D &part,
                        std::uint32_t k, const BaselineParams &p);

/** Evaluate the Conveyors-based SAOpt model. */
BaselineResult runSaOpt(const Csr &m, const Partition1D &part,
                        std::uint32_t k, const BaselineParams &p);

/**
 * Figure 10: ideal SAOpt goodput (fraction of line rate) as a function
 * of participating cores, with perfectly balanced load and no network.
 */
double saOptIdealGoodput(std::uint32_t cores, std::uint32_t k,
                         const BaselineParams &p);

/** Parameters of the naive (non-Conveyors) SA measurement of Table 2. */
struct NaiveSaParams
{
    Bandwidth lineRate = Bandwidth::fromGbps(200.0); // Slingshot NIC
    /** Cost to scan one nonzero and decide local/remote. */
    Tick scanCostPerNnz = 5 * ticks::ns;
    /** Cost to issue one fine-grained RDMA read and handle completion. */
    Tick overheadPerPr = 2000 * ticks::ns;
    std::uint32_t headerBytes = 78;
};

/** One row of Table 2 for a 2-node run. */
struct NaiveSaResult
{
    double transferRateGbps = 0.0;
    double lineUtilization = 0.0;
    double goodput = 0.0;
};

/**
 * Table 2: model the naive SA transfer rate for a 2-node split of
 * @p m with property width @p k.
 */
NaiveSaResult runNaiveSa2Node(const Csr &m, std::uint32_t k,
                              const NaiveSaParams &p);

} // namespace netsparse

#endif // NETSPARSE_BASELINE_BASELINES_HH
