#include "baseline/baselines.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/logging.hh"

namespace netsparse {

namespace {

/** Ticks to move @p bytes at @p rate. */
Tick
wireTime(std::uint64_t bytes, const Bandwidth &rate)
{
    return rate.serialize(bytes);
}

} // namespace

BaselineResult
runSuOpt(const Csr &m, const Partition1D &part, std::uint32_t k,
         const BaselineParams &p)
{
    const std::uint32_t n = part.numParts();
    const std::uint64_t prop_bytes = 4ull * k;

    BaselineResult r;
    r.perNodeTicks.resize(n);
    r.perNodeRxBytes.resize(n);
    r.perNodePrs.assign(n, 0);

    for (NodeId i = 0; i < n; ++i) {
        std::uint64_t bytes =
            static_cast<std::uint64_t>(m.cols - part.size(i)) * prop_bytes;
        r.perNodeRxBytes[i] = bytes;
        r.perNodeTicks[i] = wireTime(bytes, p.lineRate);
        r.totalWireBytes += bytes;
        if (r.perNodeTicks[i] > r.commTicks) {
            r.commTicks = r.perNodeTicks[i];
            r.tailNode = i;
        }
    }
    r.totalPayloadBytes = r.totalWireBytes; // SUOpt pays no headers
    double line_bpp = p.lineRate.bytesPerPs();
    if (r.commTicks > 0) {
        r.tailLineUtil = static_cast<double>(
                             r.perNodeRxBytes[r.tailNode]) /
                         (static_cast<double>(r.commTicks) * line_bpp);
        r.tailGoodput = r.tailLineUtil;
    }
    return r;
}

BaselineResult
runSaOpt(const Csr &m, const Partition1D &part, std::uint32_t k,
         const BaselineParams &p)
{
    const std::uint32_t n = part.numParts();
    const std::uint64_t prop_bytes = 4ull * k;
    const std::uint32_t pr_resp_bytes =
        p.proto.prHeaderBytes + static_cast<std::uint32_t>(prop_bytes);
    const std::uint32_t msg_capacity =
        p.messageBytes - p.proto.concatBaseBytes();
    const std::uint32_t msg_overhead = p.proto.concatBaseBytes();

    BaselineResult r;
    r.perNodeTicks.assign(n, 0);
    r.perNodeRxBytes.assign(n, 0);
    r.perNodePrs.assign(n, 0);

    // Per-node traffic accumulators.
    std::vector<std::uint64_t> prs_issued(n, 0), prs_served(n, 0);
    std::vector<std::uint64_t> rx_resp(n, 0), tx_resp(n, 0);
    std::vector<std::uint64_t> rx_req(n, 0), tx_req(n, 0);
    std::vector<std::uint64_t> payload_rx(n, 0);

    // Rank-local perfect pre-filtering: each of the node's ranks owns a
    // contiguous block of the node's rows and deduplicates its own PRs.
    std::vector<std::uint32_t> last_epoch(m.cols, 0);
    std::uint32_t epoch = 0;
    std::vector<std::uint64_t> dest_count(n, 0);

    for (NodeId node = 0; node < n; ++node) {
        std::uint32_t row0 = part.begin(node);
        std::uint32_t row1 = part.end(node);
        std::uint32_t rows = row1 - row0;
        std::uint32_t ranks = std::min(p.ranksPerNode, std::max(1u, rows));
        for (std::uint32_t rank = 0; rank < ranks; ++rank) {
            std::uint32_t rb = row0 + static_cast<std::uint32_t>(
                                          std::uint64_t(rows) * rank /
                                          ranks);
            std::uint32_t re = row0 + static_cast<std::uint32_t>(
                                          std::uint64_t(rows) *
                                          (rank + 1) / ranks);
            ++epoch;
            std::fill(dest_count.begin(), dest_count.end(), 0);
            for (std::uint32_t row = rb; row < re; ++row) {
                for (auto c : m.rowCols(row)) {
                    NodeId owner = part.ownerOf(c);
                    if (owner == node)
                        continue;
                    if (last_epoch[c] == epoch)
                        continue; // perfectly pre-filtered within rank
                    last_epoch[c] = epoch;
                    ++dest_count[owner];
                }
            }
            for (NodeId dest = 0; dest < n; ++dest) {
                std::uint64_t c = dest_count[dest];
                if (c == 0)
                    continue;
                prs_issued[node] += c;
                prs_served[dest] += c;
                payload_rx[node] += c * prop_bytes;

                // Responses: PR header + payload per PR, aggregated into
                // MTU-sized messages that share the upper headers.
                std::uint64_t resp_payload = c * pr_resp_bytes;
                std::uint64_t resp_msgs =
                    (resp_payload + msg_capacity - 1) / msg_capacity;
                std::uint64_t resp_bytes =
                    resp_payload + resp_msgs * msg_overhead;
                rx_resp[node] += resp_bytes;
                tx_resp[dest] += resp_bytes;

                // Requests: 4 B idx per PR, also aggregated.
                std::uint64_t req_payload = c * 4;
                std::uint64_t req_msgs =
                    (req_payload + msg_capacity - 1) / msg_capacity;
                std::uint64_t req_bytes =
                    req_payload + req_msgs * msg_overhead;
                tx_req[node] += req_bytes;
                rx_req[dest] += req_bytes;
            }
        }
    }

    double line_bpp = p.lineRate.bytesPerPs();
    for (NodeId i = 0; i < n; ++i) {
        std::uint64_t handled = prs_issued[i] + prs_served[i];
        Tick sw = static_cast<Tick>(
            static_cast<double>(handled) * p.softwareOverheadPerPr /
            p.coresPerNode);
        std::uint64_t rx = rx_resp[i] + rx_req[i];
        std::uint64_t tx = tx_resp[i] + tx_req[i];
        Tick wire = wireTime(std::max(rx, tx), p.lineRate);
        r.perNodeTicks[i] = std::max(sw, wire);
        r.perNodeRxBytes[i] = rx;
        r.perNodePrs[i] = prs_issued[i];
        r.totalWireBytes += tx;
        r.totalPayloadBytes += payload_rx[i];
        if (r.perNodeTicks[i] > r.commTicks) {
            r.commTicks = r.perNodeTicks[i];
            r.tailNode = i;
        }
    }
    if (r.commTicks > 0) {
        NodeId t = r.tailNode;
        r.tailLineUtil = static_cast<double>(r.perNodeRxBytes[t]) /
                         (static_cast<double>(r.commTicks) * line_bpp);
        r.tailGoodput = static_cast<double>(payload_rx[t]) /
                        (static_cast<double>(r.commTicks) * line_bpp);
    }
    return r;
}

double
saOptIdealGoodput(std::uint32_t cores, std::uint32_t k,
                  const BaselineParams &p)
{
    ns_assert(cores > 0, "need at least one core");
    // Each core retires one PR (4k payload bytes) per software-overhead
    // window; perfectly balanced, no network.
    double bytes_per_sec = static_cast<double>(cores) * 4.0 * k /
                           ticks::toSeconds(p.softwareOverheadPerPr);
    return std::min(1.0, bytes_per_sec / p.lineRate.bytesPerSecond());
}

NaiveSaResult
runNaiveSa2Node(const Csr &m, std::uint32_t k, const NaiveSaParams &p)
{
    Partition1D part = Partition1D::equalRows(m.rows, 2);

    std::uint64_t nnz_node[2] = {0, 0};
    std::uint64_t prs_node[2] = {0, 0};
    for (NodeId node = 0; node < 2; ++node) {
        for (std::uint32_t r = part.begin(node); r < part.end(node); ++r) {
            for (auto c : m.rowCols(r)) {
                ++nnz_node[node];
                if (part.ownerOf(c) != node)
                    ++prs_node[node];
            }
        }
    }

    auto node_time = [&](int i) {
        return static_cast<double>(nnz_node[i]) *
                   ticks::toSeconds(p.scanCostPerNnz) +
               static_cast<double>(prs_node[i]) *
                   ticks::toSeconds(p.overheadPerPr);
    };
    double t = std::max(node_time(0), node_time(1));
    std::uint64_t prs = prs_node[0] + prs_node[1];
    double payload = static_cast<double>(prs) * 4.0 * k;
    double wire = static_cast<double>(prs) * (4.0 * k + p.headerBytes);

    NaiveSaResult r;
    if (t > 0) {
        r.transferRateGbps = wire / t * 8.0 / 1e9;
        r.lineUtilization = wire / t / p.lineRate.bytesPerSecond();
        r.goodput = payload / t / p.lineRate.bytesPerSecond();
    }
    return r;
}

} // namespace netsparse
