/**
 * @file
 * PR concatenation hardware (Section 6.1.2, Figure 7).
 *
 * A Concatenation Point holds one Concatenation Queue (CQ) per (PR type,
 * destination node). PRs wait in their CQ until either the CQ fills to
 * the MTU or the CQ's Expiration Time (first-arrival time + DelayCycles)
 * passes; then the CQ's PRs are concatenated into a single packet.
 *
 * The hardware tracks expirations with a circular Expiration Time Queue
 * (EQ) whose head is checked every cycle. Because the delay is a
 * constant, EQ insertion order equals expiration order, so the simulator
 * models the EQ with one scheduled event per CQ activation plus a
 * generation check (an entry "cleared" because its CQ filled early simply
 * finds a newer generation and does nothing). The EQ occupancy is still
 * tracked and bounded to 2(N-1) entries, as in the paper.
 *
 * The module also implements the virtualized-CQ variant of Section 7.2:
 * a fixed pool of small "physical" CQs dynamically linked into per-
 * destination "virtual" CQs, for deployments where 2(N-1) MTU-sized
 * queues would be wasteful.
 */

#ifndef NETSPARSE_CONCAT_CONCATENATOR_HH
#define NETSPARSE_CONCAT_CONCATENATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/protocol.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace netsparse {

/** Configuration of one concatenation point. */
struct ConcatConfig
{
    ProtocolParams proto;
    /** Max time a PR may wait in a CQ (DelayCycles * clock period). */
    Tick delay = 0;
    /** When false, every PR is emitted immediately as a solo packet. */
    bool enabled = true;
    /** Virtualized-CQ mode (Section 7.2). */
    bool virtualized = false;
    /** Physical CQ size in virtualized mode. */
    std::uint32_t physicalCqBytes = 128;
    /** Number of physical CQs in virtualized mode. */
    std::uint32_t numPhysicalCqs = 64;
    /**
     * Per-tenant CQ lanes: with more than one lane, PRs of different
     * tenants never share a CQ (so no packet mixes tenants and the
     * emitted Packet::tenant is well defined). The default single lane
     * keeps the dense table layout - and thus the whole event stream -
     * bit-identical to the pre-tenancy simulator.
     */
    std::uint32_t tenantLanes = 1;
};

/**
 * One concatenation point (lives in an SNIC or a switch middle pipe).
 */
class Concatenator
{
  public:
    using Emit = std::function<void(Packet &&)>;

    /**
     * @param eq the event queue driving expirations.
     * @param cfg configuration.
     * @param emit sink invoked with each finished packet.
     * @param name trace/stats identity (e.g. "node3.snic.concat").
     */
    Concatenator(EventQueue &eq, ConcatConfig cfg, Emit emit,
                 std::string name = "concat");

    /** Accept one PR headed for node @p dest. */
    void push(PropertyRequest &&pr, NodeId dest);

    /** Flush every CQ (end-of-kernel drain or control-plane barrier). */
    void flushAll();

    /** Number of PRs currently waiting across all CQs. */
    std::uint64_t pendingPrs() const { return pendingPrs_; }

    /** Bytes of SRAM currently occupied by waiting PRs. */
    std::uint64_t occupiedBytes() const { return occupiedBytes_; }

    // Statistics.
    std::uint64_t prsPushed() const { return prsPushed_; }
    std::uint64_t packetsEmitted() const { return packetsEmitted_; }
    std::uint64_t flushesByFill() const { return flushesByFill_; }
    std::uint64_t flushesByExpiry() const { return flushesByExpiry_; }
    std::uint64_t maxEqOccupancy() const { return maxEqOccupancy_; }
    std::uint64_t maxOccupiedBytes() const { return maxOccupiedBytes_; }
    const Average &prsPerPacket() const { return prsPerPacket_; }
    const Average &prWaitTicks() const { return prWaitTicks_; }
    const std::string &name() const { return name_; }

    /**
     * Register every counter under "<prefix>." (the docs/observability.md
     * concatenator contract).
     */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct Cq
    {
        std::vector<PropertyRequest> prs;
        std::uint32_t bytes = 0; // PR-layer bytes (headers + payloads)
        std::uint64_t generation = 0;
        bool armed = false; // an EQ entry (timer) is outstanding
        /** Some waiting PR carries a span id (becomes Packet::spanned). */
        bool spanned = false;
        NodeId dest = invalidNode;
        PrType type = PrType::Read;
        /**
         * Enter-time summary replacing a per-PR timestamp vector:
         * pushes are time-ordered, so (first, last, sum, prs.size())
         * reproduces the flush-time wait statistics exactly - min wait
         * is now-enterLast, max is now-enterFirst, and the sum is
         * prs.size()*now - enterSum, all in exact integer arithmetic.
         */
        Tick enterFirst = 0;
        Tick enterLast = 0;
        std::uint64_t enterSum = 0;
    };

    /**
     * Index of (type, dest[, tenant lane]) in the dense CQ table.
     * Grouped by dest so both of a destination's CQs share cache
     * lines; with multiple tenant lanes a destination owns a
     * contiguous lane strip.
     */
    std::size_t
    denseKey(PrType type, NodeId dest, std::uint16_t tenant) const
    {
        std::size_t slot = static_cast<std::size_t>(dest);
        if (cfg_.tenantLanes > 1)
            slot = slot * cfg_.tenantLanes + (tenant % cfg_.tenantLanes);
        return (slot << 1) | static_cast<std::size_t>(type);
    }

    void emitSolo(PropertyRequest &&pr, NodeId dest);
    void flush(Cq &cq, const char *reason);
    void arm(std::size_t idx);
    /** Bytes the pool must hold for @p cq's current content. */
    std::uint32_t physicalBlocks(std::uint32_t bytes) const;
    /** Free one block-equivalent by flushing the fullest virtual CQ. */
    void evictForSpace();

    EventQueue &eq_;
    ConcatConfig cfg_;
    Emit emit_;
    std::string name_;

    /**
     * Dense CQ table indexed by denseKey (grown on demand to
     * 2*(max dest + 1) entries; a few hundred KB at 1024 nodes). The
     * CQ lookup sits on the hottest simulator path - one per PR sent -
     * and profiling at bench scale showed the former hash map's lookup
     * as the single largest cost, so the table trades a bounded strip
     * of memory for an indexed load. Expiry timers capture the index,
     * never a pointer: the table may grow while a timer is in flight.
     */
    std::vector<Cq> queues_;
    std::uint64_t pendingPrs_ = 0;
    std::uint64_t occupiedBytes_ = 0;
    std::uint32_t blocksInUse_ = 0;
    std::uint64_t eqOccupancy_ = 0;

    std::uint64_t prsPushed_ = 0;
    std::uint64_t packetsEmitted_ = 0;
    std::uint64_t flushesByFill_ = 0;
    std::uint64_t flushesByExpiry_ = 0;
    std::uint64_t maxEqOccupancy_ = 0;
    std::uint64_t maxOccupiedBytes_ = 0;
    Average prsPerPacket_;
    Average prWaitTicks_;
};

/**
 * Deconcatenation: split a packet back into its PRs. Free of delay
 * cycles per Table 5.
 */
std::vector<PropertyRequest> deconcatenate(Packet &&pkt);

/**
 * Per-shard recycling of Packet::prs buffers, backed by the calling
 * thread's BufferArena<PropertyRequest> (sim/arena.hh). Every packet is
 * born at a concatenation point and dies at a deconcatenation point on
 * the same simulation thread, so returning the drained vector here lets
 * the next flush reuse its capacity instead of hitting the allocator
 * once per packet (a measurable fraction of simulator time).
 */
std::vector<PropertyRequest> acquirePrBuffer(std::size_t reserve);

/** Return a drained PR buffer to the calling shard's arena. */
void recyclePrBuffer(std::vector<PropertyRequest> &&buf);

} // namespace netsparse

#endif // NETSPARSE_CONCAT_CONCATENATOR_HH
