#include "concat/concatenator.hh"

#include <algorithm>

#include "sim/arena.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace netsparse {

Concatenator::Concatenator(EventQueue &eq, ConcatConfig cfg, Emit emit,
                           std::string name)
    : eq_(eq), cfg_(cfg), emit_(std::move(emit)), name_(std::move(name))
{
    ns_assert(emit_, "concatenator needs an emit sink");
    if (cfg_.virtualized) {
        ns_assert(cfg_.physicalCqBytes > cfg_.proto.prHeaderBytes,
                  "physical CQs too small to hold any PR");
    }
}

void
Concatenator::emitSolo(PropertyRequest &&pr, NodeId dest)
{
    Packet pkt;
    pkt.src = pr.src;
    pkt.dest = dest;
    pkt.type = pr.type;
    pkt.tenant = pr.tenant;
    pkt.concatenated = false;
    pkt.spanned = pr.spanId != 0;
    pkt.prs = acquirePrBuffer(1);
    pkt.prs.push_back(std::move(pr));
    ++packetsEmitted_;
    prsPerPacket_.sample(1.0);
    emit_(std::move(pkt));
}

std::uint32_t
Concatenator::physicalBlocks(std::uint32_t bytes) const
{
    if (bytes == 0)
        return 0;
    return (bytes + cfg_.physicalCqBytes - 1) / cfg_.physicalCqBytes;
}

void
Concatenator::evictForSpace()
{
    // The physical pool is exhausted: concatenate the fullest virtual CQ
    // into a packet to recycle its blocks. Ties go to the lowest dense
    // index (dest-major order), which is deterministic by construction.
    Cq *victim = nullptr;
    for (auto &cq : queues_) {
        if (cq.bytes == 0)
            continue;
        if (!victim || cq.bytes > victim->bytes)
            victim = &cq;
    }
    ns_assert(victim, "physical CQ pool exhausted with no occupant");
    flush(*victim, "flush.evict");
}

void
Concatenator::push(PropertyRequest &&pr, NodeId dest)
{
    ++prsPushed_;
    if (!cfg_.enabled) {
        emitSolo(std::move(pr), dest);
        return;
    }

    std::size_t idx = denseKey(pr.type, dest, pr.tenant);
    if (idx >= queues_.size())
        queues_.resize(idx + 1);
    Cq &cq = queues_[idx];
    if (cq.dest == invalidNode) {
        cq.dest = dest;
        cq.type = pr.type;
    }

    std::uint32_t pr_bytes = cfg_.proto.prWireBytes(pr);
    std::uint32_t capacity =
        cfg_.proto.mtuBytes - cfg_.proto.concatBaseBytes();
    ns_assert(pr_bytes <= capacity, "one PR larger than the MTU: ",
              pr_bytes, " > ", capacity);

    // A PR that does not fit forces the CQ's current content out first.
    if (cq.bytes + pr_bytes > capacity) {
        ++flushesByFill_;
        flush(cq, "flush.fill");
    }

    if (cfg_.virtualized) {
        // Allocate physical blocks on demand; recycle when out of pool.
        while (blocksInUse_ - physicalBlocks(cq.bytes) +
                   physicalBlocks(cq.bytes + pr_bytes) >
               cfg_.numPhysicalCqs) {
            std::uint32_t before = cq.bytes;
            evictForSpace();
            // Eviction may have flushed this very CQ.
            if (cq.bytes < before)
                break;
        }
        blocksInUse_ -= physicalBlocks(cq.bytes);
        blocksInUse_ += physicalBlocks(cq.bytes + pr_bytes);
    }

    bool was_empty = cq.prs.empty();
    cq.spanned |= pr.spanId != 0;
    cq.prs.push_back(std::move(pr));
    Tick now = eq_.now();
    if (was_empty)
        cq.enterFirst = now;
    cq.enterLast = now;
    cq.enterSum += now;
    cq.bytes += pr_bytes;
    ++pendingPrs_;
    occupiedBytes_ += pr_bytes;
    maxOccupiedBytes_ = std::max(maxOccupiedBytes_, occupiedBytes_);

    if (was_empty)
        arm(idx);

    // Nothing smaller than a bare PR header can ever arrive, so a CQ with
    // less than that much room left can only be flushed; do it eagerly.
    if (cq.bytes + cfg_.proto.prHeaderBytes > capacity) {
        ++flushesByFill_;
        flush(cq, "flush.fill");
    }
}

void
Concatenator::arm(std::size_t idx)
{
    Cq &cq = queues_[idx];
    if (cfg_.delay == 0) {
        // Degenerate configuration: PRs never wait; flush immediately.
        ++flushesByExpiry_;
        flush(cq, "flush.expiry");
        return;
    }
    cq.armed = true;
    ++eqOccupancy_;
    maxEqOccupancy_ = std::max(maxEqOccupancy_, eqOccupancy_);
    std::uint64_t generation = cq.generation;
    eq_.scheduleIn(cfg_.delay, [this, idx, generation] {
        --eqOccupancy_;
        // The EQ entry was cleared if the CQ flushed (filled) meanwhile.
        Cq &target = queues_[idx];
        if (target.generation != generation)
            return;
        ++flushesByExpiry_;
        flush(target, "flush.expiry");
    });
}

void
Concatenator::flush(Cq &cq, [[maybe_unused]] const char *reason)
{
    ++cq.generation; // clears any outstanding EQ entry
    cq.armed = false;
    if (cq.prs.empty())
        return;

    Packet pkt;
    pkt.src = cq.prs.front().src;
    pkt.dest = cq.dest;
    pkt.type = cq.type;
    pkt.tenant = cq.prs.front().tenant;
    pkt.concatenated = true;
    pkt.spanned = cq.spanned;
    // Steal cq.prs wholesale and hand the CQ a recycled buffer: packets
    // die at a deconcatenation point on this same thread, so the pool
    // feeds grown-to-size buffers back and steady-state refills never
    // reallocate - without copying a packet's worth of PRs per flush.
    pkt.prs = std::move(cq.prs);
    cq.prs = acquirePrBuffer(pkt.prs.size());

    // Waits are monotone within a CQ (pushes are time-ordered), so the
    // summary yields the per-PR statistics exactly: integer arithmetic,
    // bit-identical to sampling each wait individually.
    Tick now = eq_.now();
    std::uint64_t n = pkt.prs.size();
    std::uint64_t wait_sum = n * now - cq.enterSum;
    prWaitTicks_.sampleBatch(n, static_cast<double>(wait_sum),
                             static_cast<double>(now - cq.enterLast),
                             static_cast<double>(now - cq.enterFirst));
    prsPerPacket_.sample(static_cast<double>(pkt.prs.size()));
    ++packetsEmitted_;

    NS_TRACE(tw.instant(
        tw.track(name_), reason, eq_.now(),
        traceArgs({{"prs", static_cast<double>(pkt.prs.size())},
                   {"bytes", static_cast<double>(cq.bytes)},
                   {"dest", static_cast<double>(cq.dest)}})));

    pendingPrs_ -= pkt.prs.size();
    occupiedBytes_ -= cq.bytes;
    if (cfg_.virtualized)
        blocksInUse_ -= physicalBlocks(cq.bytes);

    cq.prs.clear();
    cq.enterSum = 0;
    cq.bytes = 0;
    cq.spanned = false;

    emit_(std::move(pkt));
}

void
Concatenator::flushAll()
{
    for (auto &cq : queues_) {
        if (!cq.prs.empty())
            flush(cq, "flush.drain");
    }
}

void
Concatenator::exportStats(StatRegistry &reg,
                          const std::string &prefix) const
{
    reg.set(prefix + ".prsPushed", static_cast<double>(prsPushed_));
    reg.set(prefix + ".packetsEmitted",
            static_cast<double>(packetsEmitted_));
    reg.set(prefix + ".flushesByFill",
            static_cast<double>(flushesByFill_));
    reg.set(prefix + ".flushesByExpiry",
            static_cast<double>(flushesByExpiry_));
    reg.set(prefix + ".maxEqOccupancy",
            static_cast<double>(maxEqOccupancy_));
    reg.set(prefix + ".maxOccupiedBytes",
            static_cast<double>(maxOccupiedBytes_));
    reg.setAverage(prefix + ".prsPerPacket", prsPerPacket_);
    reg.setAverage(prefix + ".prWaitTicks", prWaitTicks_);
}

std::vector<PropertyRequest>
deconcatenate(Packet &&pkt)
{
    return std::move(pkt.prs);
}

std::vector<PropertyRequest>
acquirePrBuffer(std::size_t reserve)
{
    return BufferArena<PropertyRequest>::local().acquire(reserve);
}

void
recyclePrBuffer(std::vector<PropertyRequest> &&buf)
{
    BufferArena<PropertyRequest>::local().recycle(std::move(buf));
}

} // namespace netsparse
